// Package goinstr instruments Go source code with the paper's def-use
// checksum scheme, via go/ast rewriting. It is the Go-native counterpart of
// the lang-based compiler: every tracked local variable's definitions and
// uses are augmented with calls into defuse/rt (the general
// dynamic-use-count scheme of Algorithm 3 / Section 4.1, with auxiliary
// e_def/e_use checksums), and a deferred epilogue performs the final
// adjustments and verification.
//
// Scope: function-level variables (parameters and top-level declarations in
// the function body) of type float64 or int are tracked. Variables whose
// address is taken, that appear in control-flow conditions (the paper's
// fault model protects control variables by other means), or that are
// declared in nested blocks are left untouched.
package goinstr

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strconv"
)

// Options configures the instrumenter.
type Options struct {
	// Funcs restricts instrumentation to the named functions; empty means
	// every function in the file.
	Funcs []string
	// TrackerVar is the identifier used for the rt.Tracker; default
	// "__defuseT".
	TrackerVar string
	// RTImport is the import path of the runtime package; default
	// "defuse/rt".
	RTImport string
}

func (o *Options) tracker() string {
	if o.TrackerVar == "" {
		return "__defuseT"
	}
	return o.TrackerVar
}

func (o *Options) rtImport() string {
	if o.RTImport == "" {
		return "defuse/rt"
	}
	return o.RTImport
}

// Report describes what was instrumented.
type Report struct {
	// Tracked maps function name to the tracked variable names.
	Tracked map[string][]string
	// Skipped maps function name to variables excluded and why.
	Skipped map[string]map[string]string
}

// Instrument rewrites the Go source file src (named filename for
// diagnostics) and returns the instrumented source text.
func Instrument(filename, src string, opt Options) (string, *Report, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return "", nil, fmt.Errorf("goinstr: %w", err)
	}
	rep := &Report{Tracked: map[string][]string{}, Skipped: map[string]map[string]string{}}
	want := map[string]bool{}
	for _, f := range opt.Funcs {
		want[f] = true
	}
	touched := false
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if len(want) > 0 && !want[fn.Name.Name] {
			continue
		}
		ins := &funcInstr{opt: &opt, rep: rep, fn: fn}
		if ins.run() {
			touched = true
		}
	}
	if touched {
		addImport(file, "rt", opt.rtImport())
	}
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, file); err != nil {
		return "", nil, fmt.Errorf("goinstr: printing: %w", err)
	}
	return buf.String(), rep, nil
}

// trackedVar is one protected variable.
type trackedVar struct {
	obj     *ast.Object
	name    string
	typ     string // "float64" or "int"
	counter string // shadow counter identifier
}

type funcInstr struct {
	opt  *Options
	rep  *Report
	fn   *ast.FuncDecl
	vars map[*ast.Object]*trackedVar
	seq  int
}

// run instruments one function; it reports whether anything was tracked.
func (fi *funcInstr) run() bool {
	fi.vars = map[*ast.Object]*trackedVar{}
	skipped := map[string]string{}

	candidates := fi.collectCandidates()
	fi.excludeUnsafe(candidates, skipped)
	if len(skipped) > 0 {
		fi.rep.Skipped[fi.fn.Name.Name] = skipped
	}
	if len(candidates) == 0 {
		return false
	}
	var names []string
	for _, tv := range candidates {
		tv.counter = fmt.Sprintf("__defuseC%d", fi.seq)
		fi.seq++
		fi.vars[tv.obj] = tv
		names = append(names, tv.name)
	}
	fi.rep.Tracked[fi.fn.Name.Name] = names

	// Hoist tracked declarations so the prelude and the deferred epilogue
	// can reference every tracked variable, then rewrite the body.
	params := fi.paramObjs()
	fi.hoistDecls(params)
	fi.rewriteBlock(fi.fn.Body)

	// Prelude: tracker, counters, hoisted declarations, initial definitions
	// (parameters carry live-in values; hoisted variables start at zero),
	// and the deferred epilogue.
	var prelude []ast.Stmt
	prelude = append(prelude, assign1(ident(fi.opt.tracker()), token.DEFINE, call(sel("rt", "NewTracker"))))
	for _, tv := range fi.sorted() {
		prelude = append(prelude, &ast.DeclStmt{Decl: &ast.GenDecl{
			Tok: token.VAR,
			Specs: []ast.Spec{&ast.ValueSpec{
				Names: []*ast.Ident{ident(tv.counter)},
				Type:  sel("rt", "Counter"),
			}},
		}})
	}
	for _, tv := range fi.sorted() {
		if params[tv.obj] {
			continue
		}
		prelude = append(prelude, &ast.DeclStmt{Decl: &ast.GenDecl{
			Tok: token.VAR,
			Specs: []ast.Spec{&ast.ValueSpec{
				Names: []*ast.Ident{ident(tv.name)},
				Type:  ident(tv.typ),
			}},
		}})
	}
	for _, tv := range fi.sorted() {
		prelude = append(prelude, assign1(ident(tv.name), token.ASSIGN,
			call(sel("rt", "DefDyn"), ident(fi.opt.tracker()), amp(tv.counter), zeroOf(tv.typ), ident(tv.name))))
	}
	// Deferred epilogue: Final every tracked var, then verify.
	var epi []ast.Stmt
	for _, tv := range fi.sorted() {
		epi = append(epi, exprStmt(call(sel("rt", "Final"),
			ident(fi.opt.tracker()), amp(tv.counter), ident(tv.name))))
	}
	epi = append(epi, exprStmt(&ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ident(fi.opt.tracker()), Sel: ident("MustVerify")},
	}))
	prelude = append(prelude, &ast.DeferStmt{Call: &ast.CallExpr{
		Fun: &ast.FuncLit{
			Type: &ast.FuncType{Params: &ast.FieldList{}},
			Body: &ast.BlockStmt{List: epi},
		},
	}})

	fi.fn.Body.List = append(prelude, fi.fn.Body.List...)
	return true
}

func (fi *funcInstr) sorted() []*trackedVar {
	var out []*trackedVar
	for _, tv := range fi.vars {
		out = append(out, tv)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].counter < out[i].counter {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func (fi *funcInstr) paramObjs() map[*ast.Object]bool {
	out := map[*ast.Object]bool{}
	if fi.fn.Type.Params == nil {
		return out
	}
	for _, f := range fi.fn.Type.Params.List {
		for _, n := range f.Names {
			if n.Obj != nil {
				out[n.Obj] = true
			}
		}
	}
	return out
}

// collectCandidates finds parameters and top-level var declarations of
// supported types.
func (fi *funcInstr) collectCandidates() map[*ast.Object]*trackedVar {
	out := map[*ast.Object]*trackedVar{}
	addIdent := func(n *ast.Ident, typ string) {
		if n.Obj == nil || n.Name == "_" {
			return
		}
		out[n.Obj] = &trackedVar{obj: n.Obj, name: n.Name, typ: typ}
	}
	if fi.fn.Type.Params != nil {
		for _, f := range fi.fn.Type.Params.List {
			typ, ok := supportedType(f.Type)
			if !ok {
				continue
			}
			for _, n := range f.Names {
				addIdent(n, typ)
			}
		}
	}
	for _, s := range fi.fn.Body.List {
		switch st := s.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				if typ, ok := supportedType(vs.Type); ok {
					for _, n := range vs.Names {
						addIdent(n, typ)
					}
				}
			}
		}
	}
	// Defines ("x := expr") are typed by syntactic inference over literals
	// and already-known tracked variables, iterated to a fixed point so
	// chains like "temp := 0.0; sum := temp + 30.0" resolve.
	for {
		grew := false
		for _, s := range fi.fn.Body.List {
			st, ok := s.(*ast.AssignStmt)
			if !ok || st.Tok != token.DEFINE || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				continue
			}
			n, ok := st.Lhs[0].(*ast.Ident)
			if !ok || n.Obj == nil || out[n.Obj] != nil {
				continue
			}
			if typ, ok := inferType(st.Rhs[0], out); ok {
				addIdent(n, typ)
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return out
}

// inferType determines a define's type from float/int literals and known
// tracked variables; anything it cannot prove stays untracked.
func inferType(e ast.Expr, known map[*ast.Object]*trackedVar) (string, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		return literalType(x)
	case *ast.Ident:
		if x.Obj != nil {
			if tv := known[x.Obj]; tv != nil {
				return tv.typ, true
			}
		}
	case *ast.ParenExpr:
		return inferType(x.X, known)
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return inferType(x.X, known)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			lt, lok := inferType(x.X, known)
			rt, rok := inferType(x.Y, known)
			switch {
			case lok && rok && lt == rt:
				return lt, true
			case lok && rok: // mixed int/float cannot occur in valid Go
				return "", false
			case lok:
				return lt, true // other side is an untyped constant, usually
			case rok:
				return rt, true
			}
		}
	}
	return "", false
}

// supportedType recognizes the trackable type expressions.
func supportedType(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	switch id.Name {
	case "float64", "int":
		return id.Name, true
	}
	return "", false
}

// literalType infers the type of a := initializer syntactically: float and
// integer literals only (anything else is left untracked rather than
// guessed).
func literalType(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		switch x.Kind {
		case token.FLOAT:
			return "float64", true
		case token.INT:
			return "int", true
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return literalType(x.X)
		}
	}
	return "", false
}

// excludeUnsafe removes candidates whose address is taken or that appear in
// control-flow conditions.
func (fi *funcInstr) excludeUnsafe(cands map[*ast.Object]*trackedVar, skipped map[string]string) {
	drop := func(obj *ast.Object, why string) {
		if tv, ok := cands[obj]; ok {
			skipped[tv.name] = why
			delete(cands, obj)
		}
	}
	var inCond func(e ast.Expr)
	inCond = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Obj != nil {
				drop(id.Obj, "control variable (appears in a condition)")
			}
			return true
		})
	}
	ast.Inspect(fi.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := x.X.(*ast.Ident); ok && id.Obj != nil {
					drop(id.Obj, "address taken")
				}
			}
		case *ast.IfStmt:
			if x.Cond != nil {
				inCond(x.Cond)
			}
		case *ast.ForStmt:
			if x.Cond != nil {
				inCond(x.Cond)
			}
			// Loop index variables are control variables too.
			if x.Init != nil {
				if as, ok := x.Init.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); ok && id.Obj != nil {
							drop(id.Obj, "loop index (control variable)")
						}
					}
				}
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				inCond(x.Tag)
			}
		case *ast.RangeStmt:
			for _, l := range []ast.Expr{x.Key, x.Value} {
				if id, ok := l.(*ast.Ident); ok && id.Obj != nil {
					drop(id.Obj, "range variable (control variable)")
				}
			}
		case *ast.FuncLit:
			// Closures may capture and mutate: be conservative about any
			// candidate referenced inside.
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Obj != nil {
					drop(id.Obj, "captured by closure")
				}
				return true
			})
			return false
		}
		return true
	})
}

// hoistDecls normalizes the declarations of tracked non-parameter variables:
// "x := init" and "var x T = init" become plain assignments (so the rewrite
// pass instruments the definition), and bare "var x T" statements are
// dropped — the prelude re-declares every tracked variable, which also puts
// them in scope for the deferred verification epilogue.
func (fi *funcInstr) hoistDecls(params map[*ast.Object]bool) {
	var out []ast.Stmt
	for _, s := range fi.fn.Body.List {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE && len(st.Lhs) == 1 {
				if tv := fi.trackedIdent(st.Lhs[0]); tv != nil && !params[tv.obj] {
					st.Tok = token.ASSIGN
				}
			}
			out = append(out, st)
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				out = append(out, st)
				continue
			}
			var keep []ast.Spec
			for _, spec := range gd.Specs {
				vs, isVS := spec.(*ast.ValueSpec)
				if !isVS || !fi.allTracked(vs) {
					keep = append(keep, spec)
					continue
				}
				// Initializers become assignments; bare declarations vanish
				// (the prelude re-declares the variables).
				for i, n := range vs.Names {
					if len(vs.Values) > i {
						out = append(out, assign1(ident(n.Name), token.ASSIGN, vs.Values[i]))
					}
				}
			}
			if len(keep) > 0 {
				gd.Specs = keep
				out = append(out, st)
			}
		default:
			out = append(out, s)
		}
	}
	fi.fn.Body.List = out
}

// allTracked reports whether every name in the spec is a tracked variable.
func (fi *funcInstr) allTracked(vs *ast.ValueSpec) bool {
	for _, n := range vs.Names {
		if n.Obj == nil || fi.vars[n.Obj] == nil {
			return false
		}
	}
	return len(vs.Names) > 0
}

// rewriteBlock rewrites statements in place.
func (fi *funcInstr) rewriteBlock(b *ast.BlockStmt) {
	for i, s := range b.List {
		b.List[i] = fi.rewriteStmt(s)
	}
}

func (fi *funcInstr) rewriteStmt(s ast.Stmt) ast.Stmt {
	switch x := s.(type) {
	case *ast.AssignStmt:
		return fi.rewriteAssign(x)
	case *ast.IncDecStmt:
		if tv := fi.trackedIdent(x.X); tv != nil {
			op := token.ADD
			if x.Tok == token.DEC {
				op = token.SUB
			}
			rhs := &ast.BinaryExpr{X: fi.useOf(tv), Op: op, Y: &ast.BasicLit{Kind: token.INT, Value: "1"}}
			return assign1(ident(tv.name), token.ASSIGN, fi.defDynOf(tv, rhs))
		}
		x.X = fi.rewriteExpr(x.X)
		return x
	case *ast.ExprStmt:
		x.X = fi.rewriteExpr(x.X)
		return x
	case *ast.ReturnStmt:
		for i, r := range x.Results {
			x.Results[i] = fi.rewriteExpr(r)
		}
		return x
	case *ast.IfStmt:
		// Condition reads are control uses: untouched by design.
		fi.rewriteBlock(x.Body)
		if els, ok := x.Else.(*ast.BlockStmt); ok {
			fi.rewriteBlock(els)
		} else if els, ok := x.Else.(*ast.IfStmt); ok {
			x.Else = fi.rewriteStmt(els)
		}
		return x
	case *ast.ForStmt:
		if x.Post != nil {
			x.Post = fi.rewriteStmt(x.Post)
		}
		fi.rewriteBlock(x.Body)
		return x
	case *ast.RangeStmt:
		fi.rewriteBlock(x.Body)
		return x
	case *ast.BlockStmt:
		fi.rewriteBlock(x)
		return x
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for i, s2 := range cc.Body {
					cc.Body[i] = fi.rewriteStmt(s2)
				}
			}
		}
		return x
	case *ast.DeclStmt:
		return x
	}
	return s
}

func (fi *funcInstr) rewriteAssign(x *ast.AssignStmt) ast.Stmt {
	// Compound assignment to a tracked variable expands to the dynamic
	// scheme: the current value is a use, then the new value is defined.
	if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
		if tv := fi.trackedIdent(x.Lhs[0]); tv != nil {
			rhs := fi.rewriteExpr(x.Rhs[0])
			switch x.Tok {
			case token.ASSIGN:
				return assign1(ident(tv.name), x.Tok, fi.defDynOf(tv, rhs))
			case token.DEFINE:
				// hoistDecls converts tracked defines to assignments; a
				// remaining define cannot reference its own previous value.
				return assign1(ident(tv.name), x.Tok,
					call(sel("rt", "DefDyn"), ident(fi.opt.tracker()), amp(tv.counter), zeroOf(tv.typ), paren(rhs)))
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				op := map[token.Token]token.Token{
					token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
					token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
				}[x.Tok]
				expanded := &ast.BinaryExpr{X: fi.useOf(tv), Op: op, Y: paren(rhs)}
				return assign1(ident(tv.name), token.ASSIGN, fi.defDynOf(tv, expanded))
			}
		}
	}
	for i, r := range x.Rhs {
		x.Rhs[i] = fi.rewriteExpr(r)
	}
	// Untracked LHS may still contain tracked subscript reads (a[x] = ...).
	for i, l := range x.Lhs {
		if ix, ok := l.(*ast.IndexExpr); ok {
			ix.Index = fi.rewriteExpr(ix.Index)
			x.Lhs[i] = ix
		}
	}
	return x
}

// rewriteExpr wraps every read of a tracked variable in rt.Use.
func (fi *funcInstr) rewriteExpr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		if tv := fi.trackedIdent(x); tv != nil {
			return fi.useOf(tv)
		}
		return x
	case *ast.BinaryExpr:
		x.X = fi.rewriteExpr(x.X)
		x.Y = fi.rewriteExpr(x.Y)
		return x
	case *ast.UnaryExpr:
		if x.Op != token.AND { // &x stays untouched (var already excluded)
			x.X = fi.rewriteExpr(x.X)
		}
		return x
	case *ast.ParenExpr:
		x.X = fi.rewriteExpr(x.X)
		return x
	case *ast.CallExpr:
		for i, a := range x.Args {
			x.Args[i] = fi.rewriteExpr(a)
		}
		return x
	case *ast.IndexExpr:
		x.X = fi.rewriteExpr(x.X)
		x.Index = fi.rewriteExpr(x.Index)
		return x
	case *ast.SelectorExpr:
		return x // field reads are out of scope
	}
	return e
}

func (fi *funcInstr) trackedIdent(e ast.Expr) *trackedVar {
	id, ok := e.(*ast.Ident)
	if !ok || id.Obj == nil {
		return nil
	}
	return fi.vars[id.Obj]
}

func (fi *funcInstr) useOf(tv *trackedVar) ast.Expr {
	return call(sel("rt", "Use"), ident(fi.opt.tracker()), amp(tv.counter), ident(tv.name))
}

func (fi *funcInstr) defDynOf(tv *trackedVar, rhs ast.Expr) ast.Expr {
	return call(sel("rt", "DefDyn"), ident(fi.opt.tracker()), amp(tv.counter), ident(tv.name), paren(rhs))
}

// AST construction helpers.

func ident(name string) *ast.Ident { return ast.NewIdent(name) }

func sel(pkg, name string) ast.Expr {
	return &ast.SelectorExpr{X: ident(pkg), Sel: ident(name)}
}

func call(fun ast.Expr, args ...ast.Expr) ast.Expr {
	return &ast.CallExpr{Fun: fun, Args: args}
}

func amp(name string) ast.Expr {
	return &ast.UnaryExpr{Op: token.AND, X: ident(name)}
}

func paren(e ast.Expr) ast.Expr {
	switch e.(type) {
	case *ast.Ident, *ast.BasicLit, *ast.CallExpr, *ast.ParenExpr:
		return e
	}
	return &ast.ParenExpr{X: e}
}

func exprStmt(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

func assign1(lhs ast.Expr, tok token.Token, rhs ast.Expr) ast.Stmt {
	return &ast.AssignStmt{Lhs: []ast.Expr{lhs}, Tok: tok, Rhs: []ast.Expr{rhs}}
}

func zeroOf(typ string) ast.Expr {
	if typ == "float64" {
		return &ast.BasicLit{Kind: token.FLOAT, Value: "0.0"}
	}
	return &ast.BasicLit{Kind: token.INT, Value: "0"}
}

// addImport inserts an aliased import if not already present.
func addImport(f *ast.File, alias, path string) {
	for _, imp := range f.Imports {
		if imp.Path.Value == strconv.Quote(path) {
			return
		}
	}
	spec := &ast.ImportSpec{
		Name: ident(alias),
		Path: &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(path)},
	}
	decl := &ast.GenDecl{Tok: token.IMPORT, Specs: []ast.Spec{spec}}
	f.Decls = append([]ast.Decl{decl}, f.Decls...)
	f.Imports = append(f.Imports, spec)
}
