package telemetry

import (
	"encoding/json"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// FlightRecorder is a fixed-size lock-free ring holding the most recent
// telemetry events and finished spans. It rides alongside the ordinary sinks
// (via Multi / MultiSpan) and costs two atomic operations per record; when a
// campaign escapes — a fault is detected, the detector latches a fault of its
// own, a checkpoint fails its digest, or a fatal signal arrives — the ring is
// dumped to disk, so every escape leaves a postmortem artifact with the last
// N things the process did, in order.
//
// The ring is append-only and concurrent: writers claim a slot with one
// atomic increment and publish the entry with one atomic pointer store. A
// reader (Snapshot) may observe a claimed-but-unpublished slot; it simply
// reads the previous occupant, which keeps Snapshot wait-free and is fine for
// a postmortem buffer. Per-entry sequence numbers restore global order.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEntry]
	pos   atomic.Uint64 // next sequence number to claim

	dumpPath string
	triggers map[string]struct{}
	dumped   atomic.Bool
	lastDump atomic.Pointer[string]
}

// FlightEntry is one recorded event or span.
type FlightEntry struct {
	Seq   uint64    `json:"seq"`
	Kind  string    `json:"kind"` // "event" or "span"
	Event *Event    `json:"event,omitempty"`
	Span  *SpanData `json:"span,omitempty"`
}

// FlightDump is the JSON artifact written when a trigger fires.
type FlightDump struct {
	Schema  string        `json:"schema"`
	Time    time.Time     `json:"time"`
	Trigger string        `json:"trigger"`
	Entries []FlightEntry `json:"entries"`
}

// FlightDumpSchema identifies the dump artifact format.
const FlightDumpSchema = "defuse/flight/v1"

// DefaultFlightSize is the ring capacity used when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightSize = 4096

// DefaultTriggers returns the event names that dump the ring automatically:
// fault detection, the detector latching a fault in its own state, checkpoint
// corruption, and WAL corruption found at recovery.
func DefaultTriggers() []string {
	return []string{EvDetection, EvVerifyMismatch, EvDetectorFault, EvCheckpointCorrupt, EvWALCorrupt}
}

// NewFlightRecorder returns a recorder holding the most recent size entries.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{
		slots:    make([]atomic.Pointer[FlightEntry], size),
		triggers: map[string]struct{}{},
	}
}

// SetDump arms automatic dumping: when an event named in triggers is
// recorded, the ring is written to path (once — later triggers are counted
// but do not overwrite the first postmortem). Passing no triggers arms
// DefaultTriggers.
func (f *FlightRecorder) SetDump(path string, triggers ...string) {
	if len(triggers) == 0 {
		triggers = DefaultTriggers()
	}
	f.dumpPath = path
	f.triggers = make(map[string]struct{}, len(triggers))
	for _, t := range triggers {
		f.triggers[t] = struct{}{}
	}
}

// record claims the next slot and publishes e.
func (f *FlightRecorder) record(e *FlightEntry) {
	e.Seq = f.pos.Add(1) - 1
	f.slots[e.Seq%uint64(len(f.slots))].Store(e)
}

// Emit implements Sink: the event enters the ring, and if its name is an
// armed trigger the ring is dumped.
func (f *FlightRecorder) Emit(e Event) {
	ev := e
	f.record(&FlightEntry{Kind: "event", Event: &ev})
	if _, hot := f.triggers[e.Name]; hot {
		f.triggerDump(e.Name)
	}
}

// Close implements Sink; the ring needs no teardown.
func (f *FlightRecorder) Close() error { return nil }

// RecordSpan implements SpanSink.
func (f *FlightRecorder) RecordSpan(d SpanData) {
	f.record(&FlightEntry{Kind: "span", Span: &d})
}

// Len returns how many entries have ever been recorded (not the ring size).
func (f *FlightRecorder) Len() uint64 { return f.pos.Load() }

// Snapshot returns the ring contents ordered oldest-first by sequence
// number. It is wait-free: concurrent writers may be mid-publish, in which
// case a slot's previous occupant (or nothing, early on) is returned.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	out := make([]FlightEntry, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// triggerDump writes the postmortem once per process.
func (f *FlightRecorder) triggerDump(trigger string) {
	if f.dumpPath == "" || !f.dumped.CompareAndSwap(false, true) {
		return
	}
	t := trigger
	f.lastDump.Store(&t)
	_ = f.DumpTo(f.dumpPath, trigger)
}

// Dumped reports whether an automatic trigger has fired, and which one.
func (f *FlightRecorder) Dumped() (trigger string, ok bool) {
	if p := f.lastDump.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// DumpTo writes the current ring contents to path as a FlightDump document.
// It is safe to call at any time (exit paths, signal handlers, tests) and
// does not consume the ring.
func (f *FlightRecorder) DumpTo(path, trigger string) error {
	dump := FlightDump{
		Schema:  FlightDumpSchema,
		Time:    time.Now().UTC(),
		Trigger: trigger,
		Entries: f.Snapshot(),
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
