package faults

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// TestCampaignFlightDumpAndChromeTrace is the observability acceptance path
// end to end: a gated campaign cell aiming faults at the detector itself
// (hardened, so the scrub classifies them as detector faults) must trip the
// flight recorder's automatic postmortem dump, and the spans recorded along
// the way must export as Chrome trace-event JSON with resolvable parents —
// the artifact Perfetto loads.
func TestCampaignFlightDumpAndChromeTrace(t *testing.T) {
	dir := t.TempDir()
	flightPath := filepath.Join(dir, "flight.json")
	chromePath := filepath.Join(dir, "trace.json")
	obs, err := telemetry.SetupObs(telemetry.ObsConfig{
		FlightPath: flightPath,
		ChromePath: chromePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunCoverage(CoverageConfig{
		Kind:     checksum.ModAdd,
		Words:    16,
		BitFlips: 1,
		Pattern:  Random,
		Trials:   24,
		Seed:     7,
		Epochs:   4,
		Recover:  true,
		Target:   TargetAccumulator,
		Hardened: true,
		Trace:    obs.Sink,
		Metrics:  obs.Metrics,
		Tracer:   obs.Tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectorFaults == 0 {
		t.Fatalf("hardened accumulator cell latched no detector faults: %+v", res)
	}
	trigger, dumped := obs.Flight.Dumped()
	if !dumped || trigger != telemetry.EvDetectorFault {
		t.Fatalf("flight recorder not auto-dumped on detector fault: %q %v", trigger, dumped)
	}
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}

	// The postmortem must be a valid FlightDump carrying the trigger event.
	raw, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetry.FlightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if dump.Schema != telemetry.FlightDumpSchema || dump.Trigger != telemetry.EvDetectorFault {
		t.Errorf("dump header = %q/%q", dump.Schema, dump.Trigger)
	}
	if len(dump.Entries) == 0 {
		t.Error("flight dump is empty")
	}
	sawTrigger := false
	for _, e := range dump.Entries {
		if e.Kind == "event" && e.Event != nil && e.Event.Name == telemetry.EvDetectorFault {
			sawTrigger = true
		}
	}
	if !sawTrigger {
		t.Error("flight dump does not contain the triggering detector.fault event")
	}

	// The Chrome trace must parse, carry the campaign's span hierarchy
	// (chunk → trial → epoch), and every parent_id must resolve.
	raw, err = os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace is empty")
	}
	ids := map[string]bool{}
	names := map[string]int{}
	last := int64(-1)
	for _, e := range doc.TraceEvents {
		names[e.Name]++
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q", e.Name, e.Ph)
		}
		if e.Ts < last {
			t.Errorf("timestamps regress: %d after %d", e.Ts, last)
		}
		last = e.Ts
		if id, ok := e.Args["span_id"].(string); ok {
			ids[id] = true
		}
	}
	for _, want := range []string{"chunk", "trial", "epoch", "verify"} {
		if names[want] == 0 {
			t.Errorf("chrome trace has no %q spans (got %v)", want, names)
		}
	}
	for _, e := range doc.TraceEvents {
		if p, ok := e.Args["parent_id"].(string); ok && !ids[p] {
			t.Errorf("event %q references unexported parent %s", e.Name, p)
		}
	}
}

// TestCampaignReportLatencyHistogram checks satellite 6: the campaign's JSON
// report carries the full per-cell detection-latency distribution, not just
// the mean — cumulative buckets plus interpolated quantiles.
func TestCampaignReportLatencyHistogram(t *testing.T) {
	res, err := RunCoverage(CoverageConfig{
		Kind:     checksum.ModAdd,
		Words:    16,
		BitFlips: 1,
		Pattern:  Random,
		Trials:   64,
		Seed:     3,
		Epochs:   5,
		// End-only verification makes latency depend on the injection epoch,
		// so the histogram actually spreads across buckets.
		EndOnlyVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == 0 {
		t.Fatalf("no detections: %+v", res)
	}
	rep := res.Report()
	if rep.DetectionLatency == nil {
		t.Fatal("report has no detection_latency block")
	}
	lr := rep.DetectionLatency
	if lr.Quantiles.Count != uint64(res.Detected) {
		t.Errorf("latency count = %d, want %d detections", lr.Quantiles.Count, res.Detected)
	}
	if len(lr.Buckets) == 0 {
		t.Fatal("latency report has no buckets")
	}
	// Buckets are cumulative and end at +Inf = count.
	lastCount := uint64(0)
	for _, b := range lr.Buckets {
		if b.Count < lastCount {
			t.Errorf("bucket counts not cumulative: %d after %d", b.Count, lastCount)
		}
		lastCount = b.Count
	}
	if lr.Buckets[len(lr.Buckets)-1].LE != "+Inf" || lastCount != uint64(res.Detected) {
		t.Errorf("last bucket = %+v, want +Inf at %d", lr.Buckets[len(lr.Buckets)-1], res.Detected)
	}
	// With end-only verification over 5 epochs the mean latency is ~2, so the
	// p50 must land strictly above the zero-latency bucket.
	if lr.Quantiles.P50 <= 0 {
		t.Errorf("end-only p50 latency = %v, want > 0", lr.Quantiles.P50)
	}

	// The whole report must round-trip as JSON.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back CellReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.DetectionLatency == nil || back.DetectionLatency.Quantiles != lr.Quantiles {
		t.Errorf("quantiles did not survive the round trip: %+v", back.DetectionLatency)
	}

	// An all-zero-latency cell (every-boundary verification) still reports
	// the distribution, pinned at zero.
	res2, err := RunCoverage(CoverageConfig{
		Kind: checksum.ModAdd, Words: 16, BitFlips: 1, Pattern: Random,
		Trials: 32, Seed: 3, Epochs: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := res2.Report()
	if res2.Detected > 0 && (rep2.DetectionLatency == nil || rep2.DetectionLatency.Quantiles.P999 != 0) {
		t.Errorf("every-boundary cell latency = %+v, want all-zero quantiles", rep2.DetectionLatency)
	}
}
