package telemetry

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// FlushOnSignal installs a SIGINT/SIGTERM handler that runs finish — the
// flush/close function returned by Setup, or Obs.Finish — before the process
// dies, so a buffered JSON-lines trace from an interrupted run is never
// silently truncated and the flight-recorder ring still becomes a postmortem
// artifact. skip is the number of signals to let pass (a CLI that cancels a
// context gracefully on the first signal and flushes on its normal exit path
// passes 1; one with no handling of its own passes 0); the signal after that
// flushes and exits with the conventional 128+signo status. Skipped signals
// are not silent either: each runs the optional onSkip functions (typically
// Obs.Flush), which drain the event sink and dump the flight recorder
// non-destructively — so even if the graceful path then wedges and the
// process is SIGKILLed, the artifacts are already on disk. The returned stop
// function uninstalls the handler; call it once the normal exit path has
// taken responsibility for flushing.
func FlushOnSignal(skip int, finish func() error, onSkip ...func()) (stop func()) {
	ch := make(chan os.Signal, skip+2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		seen := 0
		for {
			select {
			case sig := <-ch:
				seen++
				if seen <= skip {
					for _, f := range onSkip {
						f()
					}
					continue
				}
				_ = finish()
				code := 128 + 15
				if sig == os.Interrupt {
					code = 128 + 2
				}
				os.Exit(code)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
