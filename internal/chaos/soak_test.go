package chaos

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"defuse/internal/bench"
)

// TestMain routes re-exec'd soak children into the child server before the
// test framework can touch them — the same pattern the crash campaign uses.
func TestMain(m *testing.M) {
	if IsSoakChild() {
		SoakChildMain()
	}
	os.Exit(m.Run())
}

func TestBuildScheduleDeterministic(t *testing.T) {
	a := BuildSchedule(42, 20*time.Second)
	b := BuildSchedule(42, 20*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := BuildSchedule(43, 20*time.Second)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical events")
	}
}

func TestBuildScheduleCarriesMinima(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 99, 12345} {
		for _, d := range []time.Duration{time.Second, 8 * time.Second, 45 * time.Second} {
			sched := BuildSchedule(seed, d)
			var kills, pauses, bursts, advs, flips, tears int
			for _, ev := range sched.Events {
				switch ev.Kind {
				case KindKill:
					kills++
				case KindPause:
					pauses++
					if ev.PauseFor <= 0 {
						t.Errorf("seed %d d %s: pause without duration", seed, d)
					}
				case KindBurst:
					bursts++
				case KindAdversary:
					advs++
				}
				if ev.Flip {
					flips++
				}
				if ev.Tear {
					tears++
				}
				if ev.At <= 0 || ev.At >= d {
					t.Errorf("seed %d d %s: event at %s outside soak", seed, d, ev.At)
				}
			}
			if kills < 2 || pauses < 1 || bursts < 1 || advs < 1 || flips < 1 || tears < 1 {
				t.Errorf("seed %d d %s: minima not carried: kills=%d pauses=%d bursts=%d advs=%d flips=%d tears=%d",
					seed, d, kills, pauses, bursts, advs, flips, tears)
			}
			if want := kills + 1; len(sched.WALFaults) != want {
				t.Errorf("seed %d d %s: %d WAL fault specs for %d incarnations", seed, d, len(sched.WALFaults), want)
			}
			if !sortedByTime(sched.Events) {
				t.Errorf("seed %d d %s: events not in firing order", seed, d)
			}
		}
	}
}

func sortedByTime(events []Event) bool {
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return false
		}
	}
	return true
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindKill: "kill", KindPause: "pause", KindBurst: "burst", KindAdversary: "adversary"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "chaos.Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

// passRow is a row that clears every gate condition.
func passRow() bench.SoakRow {
	return bench.SoakRow{
		Seed: 1, Kills: 2, Pauses: 1, TornWrites: 1, BitFlips: 1,
		WriteFaults: 2, Bursts: 1, Restarts: 3, Requests: 100,
		Injected: 20, Detected: 20, Recovered: 20,
	}
}

func TestGate(t *testing.T) {
	ok := &Result{Row: passRow()}
	if err := ok.Gate(); err != nil {
		t.Fatalf("clean row gated: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*bench.SoakRow)
	}{
		{"silent corruption", func(r *bench.SoakRow) { r.SilentCorruptions = 1 }},
		{"undetected fault", func(r *bench.SoakRow) { r.UndetectedFaults = 1 }},
		{"resume mismatch", func(r *bench.SoakRow) { r.ResumeMismatches = 1 }},
		{"audit failure", func(r *bench.SoakRow) { r.AuditFailures = 1 }},
		{"too few kills", func(r *bench.SoakRow) { r.Kills = 1 }},
		{"no pause", func(r *bench.SoakRow) { r.Pauses = 0 }},
		{"no bit flip", func(r *bench.SoakRow) { r.BitFlips = 0 }},
		{"no torn write", func(r *bench.SoakRow) { r.TornWrites = 0 }},
		{"no burst", func(r *bench.SoakRow) { r.Bursts = 0 }},
		{"no write fault", func(r *bench.SoakRow) { r.WriteFaults = 0 }},
		{"no requests", func(r *bench.SoakRow) { r.Requests = 0 }},
	}
	for _, tc := range cases {
		row := passRow()
		tc.mutate(&row)
		if err := (&Result{Row: row}).Gate(); err == nil {
			t.Errorf("%s: gate passed", tc.name)
		}
	}
}

// TestSoakShort runs a real (but brief) soak: a re-exec'd child under the
// full disturbance schedule, with the gate enforced at the end.
func TestSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs wall-clock time")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Soak(ctx, Config{
		Exe:      os.Args[0],
		Dir:      t.TempDir(),
		Seed:     7,
		Duration: 8 * time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	for _, f := range res.Failures {
		t.Logf("failure: %s", f)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("gate: %v\nrow: %+v", err, res.Row)
	}
	row := res.Row
	if row.Restarts != row.Kills+1 {
		t.Errorf("restarts %d, want kills+1 = %d", row.Restarts, row.Kills+1)
	}
	if row.JournalDiskBytes == 0 || row.JournalSegments == 0 {
		t.Errorf("journal footprint not recorded: %+v", row)
	}
	t.Logf("soak row: %+v", row)
}
