package rt

import (
	"testing"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// The span layer must be free when disabled: the shard fold path never
// consults the tracer (spans record only on the locked merge/drain/verify
// operations), and even those pay a single nil check when no tracer is
// armed. These benchmarks and the guard below pin that contract — the
// "disabled-tracing ≤2%" acceptance budget of the observability ISSUE.

// tracedFoldLoop is shardFoldLoop with periodic merges, so the tracer nil
// check on the merge path is actually exercised rather than amortised to one
// hit per benchmark run.
func tracedFoldLoop(sh *Shard, n int) {
	tr := sh.Tracker()
	v := 1.5
	for i := 0; i < n; i++ {
		v = Def(tr, v, 1)
		_ = UseKnown(tr, v)
		if i%1024 == 1023 {
			sh.Merge()
			tr = sh.Tracker()
		}
	}
	sh.Merge()
}

func BenchmarkShardedFoldNoTracer(b *testing.B) {
	st := NewShardedWith(checksum.ModAdd)
	sh := st.Shard()
	b.ReportAllocs()
	tracedFoldLoop(sh, b.N)
}

// discardSpans is the cheapest possible enabled sink, isolating the span
// bookkeeping cost itself.
type discardSpans struct{}

func (discardSpans) RecordSpan(telemetry.SpanData) {}

func BenchmarkShardedFoldTracerEnabled(b *testing.B) {
	st := NewShardedWith(checksum.ModAdd)
	st.SetTracer(telemetry.NewTracer(discardSpans{}), telemetry.SpanContext{})
	sh := st.Shard()
	b.ReportAllocs()
	tracedFoldLoop(sh, b.N)
}

// TestDisabledTracerOverheadGuard pins the disabled path: a ShardedTracker
// with a nil tracer armed must fold within 2% of one that never heard of
// tracing. The fold loop merges every 1024 ops so the guarded (nil-checked)
// merge path runs thousands of times per measurement; best-of-5 absorbs
// scheduler noise. An over-budget ratio means span bookkeeping leaked onto
// the fold or per-merge path.
func TestDisabledTracerOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	// testing.BenchmarkResult.NsPerOp truncates to integer nanoseconds — a
	// ~15 ns/op loop would quantize to ~7% steps, swamping a 2% budget — so
	// measure in float ns. Runs are interleaved so clock drift and thermal
	// ramps hit both sides equally.
	nsPerOp := func(f func(b *testing.B)) float64 {
		r := testing.Benchmark(f)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	plain := NewShardedWith(checksum.ModAdd)
	shPlain := plain.Shard()
	disabled := NewShardedWith(checksum.ModAdd)
	disabled.SetTracer(nil, telemetry.SpanContext{})
	shDisabled := disabled.Shard()

	baseline, traced := 0.0, 0.0
	for i := 0; i < 5; i++ {
		if b := nsPerOp(func(b *testing.B) { tracedFoldLoop(shPlain, b.N) }); baseline == 0 || b < baseline {
			baseline = b
		}
		if d := nsPerOp(func(b *testing.B) { tracedFoldLoop(shDisabled, b.N) }); traced == 0 || d < traced {
			traced = d
		}
	}

	ratio := traced / baseline
	t.Logf("no-tracer %.2f ns/op, disabled-tracer %.2f ns/op, ratio %.3f (guard 1.02x)", baseline, traced, ratio)
	if ratio > 1.02 {
		t.Errorf("disabled-tracer fold overhead ratio %.3f exceeds the 2%% guard", ratio)
	}
}

// TestTracerSpansOnShardOps checks that an armed tracer sees the locked-path
// spans (merge, verify, epoch.end) parented under the supervisor context it
// was armed with — and that the fold path emits none.
func TestTracerSpansOnShardOps(t *testing.T) {
	buf := telemetry.NewSpanBuffer(0)
	tr := telemetry.NewTracer(buf)
	root := tr.Start(telemetry.SpanContext{}, "run")

	st := NewShardedWith(checksum.ModAdd)
	st.SetTracer(tr, root.Context())
	sh := st.Shard()
	v := Def(sh.Tracker(), 2.5, 1)
	_ = UseKnown(sh.Tracker(), v)
	if got := len(buf.Spans()); got != 0 {
		t.Fatalf("fold path recorded %d spans, want 0", got)
	}
	sh.Merge()
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	root.End()

	names := map[string]int{}
	for _, s := range buf.Spans() {
		names[s.Name]++
		if s.Name != "run" && s.Trace != root.Context().Trace {
			t.Errorf("span %q not in the supervisor's trace", s.Name)
		}
	}
	if names["shard.merge"] == 0 || names["verify"] == 0 {
		t.Errorf("missing locked-path spans: %v", names)
	}
}
