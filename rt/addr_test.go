package rt

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"defuse/internal/addrsum"
)

// addrAccess is one instrumented access for the address-stream tests.
type addrAccess struct {
	store             bool
	intent, effective int
}

func (a addrAccess) apply(at *addrsum.Tracker) {
	if a.store {
		at.Store(a.intent, a.effective)
	} else {
		at.Load(a.intent, a.effective)
	}
}

func genAddrTrace(rng *rand.Rand, n, words int) []addrAccess {
	ops := make([]addrAccess, n)
	for i := range ops {
		idx := rng.Intn(words)
		ops[i] = addrAccess{store: rng.Intn(2) == 0, intent: idx, effective: idx}
	}
	return ops
}

// requireSameAddrState asserts byte-identical address-stream state between
// the merged root and a sequential tracker, mirroring requireSameState.
func requireSameAddrState(t *testing.T, ctx string, root, seq *addrsum.Tracker) {
	t.Helper()
	if root.Accumulators() != seq.Accumulators() {
		t.Fatalf("%s: accumulators %#x != sequential %#x", ctx, root.Accumulators(), seq.Accumulators())
	}
	if root.Shadows() != seq.Shadows() {
		t.Fatalf("%s: shadows diverged from sequential", ctx)
	}
	rl, rs := root.OpCounts()
	sl, ss := seq.OpCounts()
	if rl != sl || rs != ss {
		t.Fatalf("%s: op counts (%d,%d) != sequential (%d,%d)", ctx, rl, rs, sl, ss)
	}
}

// TestAddrShardedMergeEquivalentToSequential: random partitions of an
// address trace across shards merge to exactly the sequential fold — the
// same property shard_test.go pins for the data checksums.
func TestAddrShardedMergeEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(6600))
	for round := 0; round < 15; round++ {
		ops := genAddrTrace(rng, 20+rng.Intn(200), 64)
		// A minority of faulty rounds: the failing verdict must be
		// partition-invariant too.
		if round%3 == 0 {
			i := rng.Intn(len(ops))
			ops[i].effective = (ops[i].intent + 1 + rng.Intn(62)) % 64
		}
		seq := addrsum.NewTracker()
		for _, op := range ops {
			op.apply(seq)
		}
		for nShards := 1; nShards <= 8; nShards++ {
			st := NewSharded()
			st.EnableAddr()
			shards := make([]*Shard, nShards)
			for i := range shards {
				shards[i] = st.Shard()
			}
			for _, op := range ops {
				op.apply(shards[rng.Intn(nShards)].Tracker().Addr())
			}
			st.Drain()
			requireSameAddrState(t, "sharded", st.Addr(), seq)
			if _, err := st.AddrEndEpoch(); (err == nil) != (seq.Verify() == nil) {
				t.Fatalf("%d shards: boundary verdict %v, sequential %v", nShards, err, seq.Verify())
			}
		}
	}
}

// TestAddrWorkerCountInvariance: the same access stream folded concurrently
// by W goroutines (each owning one shard, stream split round-robin) yields
// identical merged accumulators for every W — the address streams inherit
// the pair's commutativity, so parallelism degree is unobservable.
func TestAddrWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7700))
	ops := genAddrTrace(rng, 4096, 128)
	var want [4]uint64
	for _, workers := range []int{1, 2, 3, 4, 8} {
		st := NewSharded()
		st.EnableAddr()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sh := st.Shard()
				defer sh.Close()
				at := sh.Tracker().Addr()
				for i := w; i < len(ops); i += workers {
					ops[i].apply(at)
				}
			}(w)
		}
		wg.Wait()
		st.Drain()
		got := st.Addr().Accumulators()
		if workers == 1 {
			want = got
		} else if got != want {
			t.Fatalf("%d workers: accumulators %#x != 1-worker %#x", workers, got, want)
		}
		if _, err := st.AddrEndEpoch(); err != nil {
			t.Fatalf("%d workers: clean stream failed boundary verify: %v", workers, err)
		}
	}
}

// TestEnableAddrArmsLiveShards: shards handed out before EnableAddr gain an
// address tracker retroactively, so a pool can arm protection mid-flight.
func TestEnableAddrArmsLiveShards(t *testing.T) {
	st := NewSharded()
	early := st.Shard()
	if early.Tracker().Addr() != nil {
		t.Fatal("shard carried an address tracker before EnableAddr")
	}
	st.EnableAddr()
	if early.Tracker().Addr() == nil {
		t.Fatal("EnableAddr did not arm the live shard")
	}
	late := st.Shard()
	if late.Tracker().Addr() == nil {
		t.Fatal("EnableAddr did not arm a subsequent shard")
	}
	early.Close()
	late.Close()
}

// TestAddrScrubThroughShardedTracker: a fault in a shard's address
// accumulator surfaces from the root's ScrubDetector after the merge, with
// the addrsum part named.
func TestAddrScrubThroughShardedTracker(t *testing.T) {
	st := NewSharded()
	st.EnableAddr()
	sh := st.Shard()
	at := sh.Tracker().Addr()
	at.Load(1, 1)
	at.CorruptAccumulator(addrsum.LoadIntent, 9)
	st.Drain()
	err := st.ScrubDetector()
	var df *DetectorFaultError
	if !errors.As(err, &df) {
		t.Fatalf("ScrubDetector returned %v, want *DetectorFaultError", err)
	}
	if df.Part != "addrsum" {
		t.Fatalf("detector fault blamed part %q, want addrsum", df.Part)
	}
}

// TestAddrEpochRollback: a redirected epoch fails AddrEndEpoch, AddrRollback
// restores the sealed entry state and clears unmerged shard folds, and the
// re-executed epoch verifies.
func TestAddrEpochRollback(t *testing.T) {
	st := NewSharded()
	st.EnableAddr()
	sh := st.Shard()

	sh.Tracker().Addr().Load(0, 0)
	start := st.AddrBeginEpoch()

	sh.Tracker().Addr().Load(3, 11) // the wrong-location load
	if _, err := st.AddrEndEpoch(); err == nil {
		t.Fatal("AddrEndEpoch verified a redirected epoch")
	}
	var mm *addrsum.MismatchError
	if _, err := st.AddrEndEpoch(); !errors.As(err, &mm) {
		t.Fatalf("boundary error is %T, want *addrsum.MismatchError", err)
	}
	if err := st.AddrRollback(start); err != nil {
		t.Fatalf("AddrRollback failed: %v", err)
	}
	// The unmerged shard residue must be gone, or re-execution double-counts.
	if acc := sh.Tracker().Addr().Accumulators(); acc != ([4]uint64{}) {
		t.Fatalf("shard kept unmerged address folds across rollback: %#x", acc)
	}
	sh.Tracker().Addr().Load(3, 3)
	if _, err := st.AddrEndEpoch(); err != nil {
		t.Fatalf("re-executed epoch failed boundary verify: %v", err)
	}
}

// TestAddrDisabledNoops: the Addr* epoch methods are safe unconditional
// calls on a tracker that never enabled address protection.
func TestAddrDisabledNoops(t *testing.T) {
	st := NewSharded()
	start := st.AddrBeginEpoch()
	if _, err := st.AddrEndEpoch(); err != nil {
		t.Fatalf("disabled AddrEndEpoch errored: %v", err)
	}
	if err := st.AddrRollback(start); err != nil {
		t.Fatalf("disabled AddrRollback errored: %v", err)
	}
	if st.Addr() != nil {
		t.Fatal("Addr non-nil without EnableAddr")
	}
}
