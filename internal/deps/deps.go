// Package deps computes exact (value-based, last-writer) flow dependences
// for the affine fragment of a program, the analysis the paper obtains from
// ISL (Section 3.1, "Polyhedral Dependences"). A flow dependence relates a
// write instance to the read instances that observe the written value; pairs
// whose cell is overwritten by an intervening write are excluded, so the
// dependences are exact rather than transitive.
package deps

import (
	"fmt"

	"defuse/internal/pdg"
	"defuse/internal/poly"
)

// Dep is the flow-dependence relation from one write access to one read
// access. The relation's output iterators carry the "'" suffix.
type Dep struct {
	Src *pdg.Statement // the writer
	Dst *pdg.Statement // the reader
	// DstRead indexes Dst.Reads, identifying which read this dependence
	// feeds.
	DstRead int
	// Rel maps source (write) iterations to target (read) iterations.
	Rel poly.Map
	// Exact reports whether every projection/subtraction involved was exact
	// over the integers.
	Exact bool
}

func (d *Dep) String() string {
	return fmt.Sprintf("%s -> %s (read #%d): %s", d.Src.ID, d.Dst.ID, d.DstRead, d.Rel)
}

// Flow is the program's full flow-dependence information.
type Flow struct {
	Model *pdg.Model
	Deps  []*Dep
	// Exact reports whether all dependences are exact.
	Exact bool
}

// From returns the dependences whose source is the given statement.
func (f *Flow) From(src *pdg.Statement) []*Dep {
	var out []*Dep
	for _, d := range f.Deps {
		if d.Src == src {
			out = append(out, d)
		}
	}
	return out
}

// To returns the dependences feeding the given read of a statement.
func (f *Flow) To(dst *pdg.Statement, read int) []*Dep {
	var out []*Dep
	for _, d := range f.Deps {
		if d.Dst == dst && d.DstRead == read {
			out = append(out, d)
		}
	}
	return out
}

const (
	dstSuffix  = "'"
	killSuffix = "''"
)

// Analyze computes flow dependences between every affine write and every
// affine read of the same array in the model. Statements or accesses outside
// the affine fragment are skipped (the instrumenter covers them dynamically).
func Analyze(m *pdg.Model) *Flow {
	f := &Flow{Model: m, Exact: true}
	// Writers per array.
	writers := map[string][]*pdg.Statement{}
	for _, s := range m.Stmts {
		if s.ControlAffine && s.Write.Affine {
			writers[s.Write.Array] = append(writers[s.Write.Array], s)
		}
	}
	for _, w := range m.Stmts {
		if !w.ControlAffine || !w.Write.Affine {
			continue
		}
		for _, r := range m.Stmts {
			if !r.ControlAffine {
				continue
			}
			for ri := range r.Reads {
				read := &r.Reads[ri]
				if !read.Affine || read.Array != w.Write.Array {
					continue
				}
				dep, exact := flowDep(w, r, read, writers[w.Write.Array])
				f.Exact = f.Exact && exact
				if empty, _ := dep.IsEmpty(); !empty {
					f.Deps = append(f.Deps, &Dep{Src: w, Dst: r, DstRead: ri, Rel: dep, Exact: exact})
				}
			}
		}
	}
	return f
}

// flowDep computes the exact dependence w.Write -> read-of-r, subtracting
// pairs killed by any intervening writer.
func flowDep(w, r *pdg.Statement, read *pdg.Access, writers []*pdg.Statement) (poly.Map, bool) {
	exact := true
	dstRen := pdg.RenameSuffix(r.Iters, dstSuffix)
	dstIters := renamed(r.Iters, dstRen)

	// Memory-based dependence: same cell, domains, w before r.
	var memPieces []poly.BasicMap
	for _, branch := range pdg.SchedLTBranches(w, r, nil, dstRen) {
		bm := poly.NewBasicMap(w.ID, w.Iters, r.ID, dstIters)
		bm = bm.With(w.Domain.Cons...)
		bm = bm.With(renameCons(r.Domain.Cons, dstRen)...)
		for k := range w.Write.Index {
			bm = bm.With(poly.Eq(w.Write.Index[k], read.Index[k].Rename(dstRen)))
		}
		bm = bm.With(branch...)
		if empty, ex := bm.IsEmpty(); !(empty && ex) {
			memPieces = append(memPieces, bm)
		}
	}
	if len(memPieces) == 0 {
		return poly.Map{}, true
	}

	// Killed pairs: exists an intervening write k'' to the same cell with
	// w < k'' < r.
	var killedWrapped []poly.BasicSet
	for _, killer := range writers {
		killRen := pdg.RenameSuffix(killer.Iters, killSuffix)
		killIters := renamed(killer.Iters, killRen)
		for _, wk := range pdg.SchedLTBranches(w, killer, nil, killRen) {
			for _, kr := range pdg.SchedLTBranches(killer, r, killRen, dstRen) {
				dims := append(append(append([]string(nil), w.Iters...), dstIters...), killIters...)
				bs := poly.BasicSet{Tuple: "killed", Dims: dims}
				bs = bs.With(w.Domain.Cons...)
				bs = bs.With(renameCons(r.Domain.Cons, dstRen)...)
				bs = bs.With(renameCons(killer.Domain.Cons, killRen)...)
				// Same cell between w and r.
				for k := range w.Write.Index {
					bs = bs.With(poly.Eq(w.Write.Index[k], read.Index[k].Rename(dstRen)))
				}
				// Killer writes that same cell.
				for k := range killer.Write.Index {
					bs = bs.With(poly.Eq(killer.Write.Index[k].Rename(killRen), read.Index[k].Rename(dstRen)))
				}
				bs = bs.With(wk...)
				bs = bs.With(kr...)
				if empty, _ := bs.IsEmpty(); empty {
					continue
				}
				projected, ex := bs.ProjectOut(killIters...)
				exact = exact && ex
				if empty, _ := projected.IsEmpty(); !empty {
					killedWrapped = append(killedWrapped, projected.Simplified())
				}
			}
		}
	}

	// D_flow = D_mem \ killed, computed on the wrapped (flattened) form.
	memWrapped := make([]poly.BasicSet, len(memPieces))
	for i, bm := range memPieces {
		memWrapped[i] = bm.Wrap()
	}
	result := poly.UnionSet(memWrapped...)
	if len(killedWrapped) > 0 {
		result = result.Subtract(poly.UnionSet(killedWrapped...))
	}

	var out []poly.BasicMap
	template := poly.NewBasicMap(w.ID, w.Iters, r.ID, dstIters)
	for _, bs := range result.Pieces {
		bm := poly.UnwrapInto(bs, template)
		if empty, _ := bm.IsEmpty(); !empty {
			out = append(out, bm)
		}
	}
	return poly.UnionMap(out...), exact
}

func renamed(names []string, ren map[string]string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if nn, ok := ren[n]; ok {
			out[i] = nn
		} else {
			out[i] = n
		}
	}
	return out
}

func renameCons(cons []poly.Constraint, ren map[string]string) []poly.Constraint {
	out := make([]poly.Constraint, len(cons))
	for i, c := range cons {
		out[i] = c.Rename(ren)
	}
	return out
}
