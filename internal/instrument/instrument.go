package instrument

import (
	"fmt"
	"sort"
	"time"

	"defuse/internal/deps"
	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/poly"
	"defuse/internal/usecount"
	"defuse/telemetry"
)

// Options selects the optimizations of Sections 3.3 and 4.2.
type Options struct {
	// Split applies index-set splitting (Algorithm 2), replacing per-
	// iteration use-count guards with split loops.
	Split bool
	// Inspector hoists inspectors for iterative (while) loops whose
	// irregular index structures are loop-invariant (Section 4.2).
	Inspector bool
	// Trace, when non-nil, receives structured instrumentation events
	// (compile.phase, plan.chosen, split.applied, inspector.hoisted).
	Trace telemetry.Sink
	// Metrics, when non-nil, receives phase-timing histograms and
	// plan-decision counters.
	Metrics *telemetry.Registry
}

// Plan names the protection scheme chosen for a variable.
type Plan string

// The possible per-variable plans.
const (
	PlanStatic    Plan = "static"    // compile-time use counts (Algorithm 1)
	PlanDynamic   Plan = "dynamic"   // shadow counters + e-checksums (Section 4.1)
	PlanInspector Plan = "inspector" // inspector-counted iterative array (Section 4.2)
	PlanInvariant Plan = "invariant" // read-only array under an inspector loop
	PlanControl   Plan = "control"   // control variable: protected by other means (Section 2.2)
)

// PhaseTiming records the wall time of one pipeline phase.
type PhaseTiming struct {
	Phase    string
	Duration time.Duration
}

// Report summarizes instrumentation decisions.
type Report struct {
	Plans             map[string]Plan
	InspectorsHoisted int
	SplitApplied      bool
	// Phases lists per-phase wall times in execution order (the parse
	// phase is prepended by defuse.Compile).
	Phases []PhaseTiming
	// SplitSegments counts the extra loops materialized by index-set
	// splitting (loops after splitting minus loops before).
	SplitSegments int
	// ChecksumStmts counts the add_to_chksm statements inserted.
	ChecksumStmts int
}

// PlanCounts tallies variables per protection plan, for summary reporting.
func (r Report) PlanCounts() map[Plan]int {
	out := map[Plan]int{}
	for _, p := range r.Plans {
		out[p]++
	}
	return out
}

// Result is an instrumented program plus its report.
type Result struct {
	Prog   *lang.Program
	Report Report
}

// CloneProgram deep-copies a program.
func CloneProgram(p *lang.Program) *lang.Program {
	np := &lang.Program{Name: p.Name, Params: append([]string(nil), p.Params...)}
	for _, d := range p.Decls {
		nd := &lang.VarDecl{Pos: d.Pos, Name: d.Name, Type: d.Type}
		for _, dim := range d.Dims {
			nd.Dims = append(nd.Dims, lang.CloneExpr(dim))
		}
		np.Decls = append(np.Decls, nd)
	}
	np.Body = lang.CloneStmts(p.Body)
	return np
}

// Instrument inserts error-detection checksums into a copy of prog.
func Instrument(src *lang.Program, opt Options) (*Result, error) {
	prog := CloneProgram(src)
	rep := Report{}
	phase := func(name string, f func()) {
		d := telemetry.TimePhase(opt.Trace, opt.Metrics, "instrument", name, f)
		rep.Phases = append(rep.Phases, PhaseTiming{Phase: name, Duration: d})
	}

	var model *pdg.Model
	var err error
	phase("pdg.extract", func() { model, err = pdg.Extract(prog) })
	if err != nil {
		return nil, err
	}
	var flow *deps.Flow
	phase("dependence.analysis", func() { flow = deps.Analyze(model) })
	var uc *usecount.Analysis
	phase("polyhedral.counting", func() { uc = usecount.Analyze(flow) })

	ins := &instrumenter{
		prog:  prog,
		opt:   opt,
		model: model,
		uc:    uc,
		names: newNames(prog),
		stmts: map[*lang.Assign]*pdg.Statement{},
		plans: map[string]Plan{},
		cnts:  map[string]string{},
		insp:  map[*lang.While]*inspectorPlan{},
	}
	for _, s := range model.Stmts {
		ins.stmts[s.Node] = s
	}
	phase("classify", func() { ins.classify() })
	if opt.Inspector {
		phase("inspector.hoisting", func() { ins.detectInspectors() })
	}
	phase("rewrite", func() {
		ins.buildDynamicBoilerplate()
		body := ins.rewrite(prog.Body)
		var full []lang.Stmt
		full = append(full, ins.prologue...)
		full = append(full, body...)
		full = append(full, ins.epilogue...)
		full = append(full, &lang.AssertChecksums{})
		prog.Body = full
		prog.Decls = append(prog.Decls, ins.newDecls...)
	})

	rep.Plans = ins.plans
	rep.InspectorsHoisted = len(ins.insp)
	if opt.Split {
		before := countLoops(prog.Body)
		phase("index-set.splitting", func() { prog.Body = SplitLoops(prog.Body) })
		rep.SplitApplied = true
		rep.SplitSegments = countLoops(prog.Body) - before
	}
	phase("check", func() {
		if cerr := lang.Check(prog); cerr != nil {
			err = fmt.Errorf("instrument: generated program fails checks: %w", cerr)
		}
	})
	if err != nil {
		return nil, err
	}
	rep.ChecksumStmts = countChecksumStmts(prog.Body)
	rep.emitDecisions(opt)
	return &Result{Prog: prog, Report: rep}, nil
}

// countLoops counts for loops in a statement tree.
func countLoops(ss []lang.Stmt) int {
	n := 0
	lang.WalkStmts(ss, func(s lang.Stmt) bool {
		if _, ok := s.(*lang.For); ok {
			n++
		}
		return true
	})
	return n
}

// countChecksumStmts counts add_to_chksm statements in a statement tree.
func countChecksumStmts(ss []lang.Stmt) int {
	n := 0
	lang.WalkStmts(ss, func(s lang.Stmt) bool {
		if _, ok := s.(*lang.AddToChecksum); ok {
			n++
		}
		return true
	})
	return n
}

// emitDecisions streams the final instrumentation decisions as events and
// counters (a no-op when telemetry is disabled).
func (r Report) emitDecisions(opt Options) {
	for _, name := range r.sortedPlanNames() {
		plan := r.Plans[name]
		telemetry.Emit(opt.Trace, telemetry.EvPlanChosen, map[string]any{
			"variable": name,
			"plan":     string(plan),
		})
		opt.Metrics.Counter("defuse_plans_total",
			telemetry.Label{Key: "plan", Value: string(plan)}).Inc()
	}
	if r.SplitApplied {
		telemetry.Emit(opt.Trace, telemetry.EvSplitApplied, map[string]any{
			"segments": r.SplitSegments,
		})
	}
	if r.InspectorsHoisted > 0 {
		telemetry.Emit(opt.Trace, telemetry.EvInspectorHoisted, map[string]any{
			"loops": r.InspectorsHoisted,
		})
		opt.Metrics.Counter("defuse_inspectors_hoisted_total").Add(uint64(r.InspectorsHoisted))
	}
	opt.Metrics.Counter("defuse_checksum_stmts_total").Add(uint64(r.ChecksumStmts))
}

type instrumenter struct {
	prog  *lang.Program
	opt   Options
	model *pdg.Model
	uc    *usecount.Analysis
	names *names
	stmts map[*lang.Assign]*pdg.Statement
	plans map[string]Plan
	cnts  map[string]string // dynamic var -> counter variable name
	insp  map[*lang.While]*inspectorPlan

	newDecls []*lang.VarDecl
	prologue []lang.Stmt
	epilogue []lang.Stmt
}

// classify assigns every declared variable a plan: control variables are
// excluded (fault model Section 2.2); statically analyzable variables use
// Algorithm 1; the rest use the dynamic scheme. Inspector detection may
// upgrade dynamic variables afterwards.
func (ins *instrumenter) classify() {
	control := map[string]bool{}
	lang.WalkStmts(ins.prog.Body, func(s lang.Stmt) bool {
		var cond lang.Expr
		switch x := s.(type) {
		case *lang.While:
			cond = x.Cond
		case *lang.If:
			cond = x.Cond
		default:
			return true
		}
		for _, r := range lang.ExprRefs(cond) {
			if ins.prog.Decl(r.Name) != nil {
				control[r.Name] = true
			}
		}
		return true
	})
	for _, d := range ins.prog.Decls {
		switch {
		case control[d.Name]:
			ins.plans[d.Name] = PlanControl
		case ins.uc.Analyzable(d.Name):
			ins.plans[d.Name] = PlanStatic
		default:
			ins.plans[d.Name] = PlanDynamic
		}
	}
}

// buildDynamicBoilerplate declares shadow counters and emits the prologue
// (live-in contributions, counter zeroing) and epilogue (final adjustments)
// for every variable, per its plan.
func (ins *instrumenter) buildDynamicBoilerplate() {
	// Deterministic order over declarations.
	for _, d := range ins.prog.Decls {
		switch ins.plans[d.Name] {
		case PlanStatic:
			ins.emitStaticLiveIn(d)
		case PlanDynamic:
			ins.emitDynamicBoilerplate(d)
		}
	}
}

// emitStaticLiveIn generates prologue code adding the initial values of an
// analyzable array to the def-checksum with their live-in use counts. All
// contributions are merged into a single scan of the array: piece domains
// are gisted against the rectangular cell bounds (so bounds-only domains
// need no guard) and pieces with identical residual domains are summed.
func (ins *instrumenter) emitStaticLiveIn(d *lang.VarDecl) {
	contribs := ins.uc.LiveIns[d.Name]
	if len(contribs) == 0 {
		return
	}
	iters := make([]string, len(d.Dims))
	rename := map[string]string{}
	for k := range d.Dims {
		iters[k] = ins.names.fresh(fmt.Sprintf("li%d", k))
		rename[usecount.CellVarName(d.Name, k)] = iters[k]
	}
	// Rectangular context: 0 <= c_k <= dim_k - 1 (in cell-variable names).
	var ctx []poly.Constraint
	isParam := func(name string) bool { return ins.prog.IsParam(name) }
	for k, dim := range d.Dims {
		cv := poly.V(usecount.CellVarName(d.Name, k))
		ctx = append(ctx, poly.Ge(cv, poly.L(0)))
		if lin, ok := pdg.ExprToLin(dim, isParam); ok {
			ctx = append(ctx, poly.Le(cv, lin.AddConst(-1)))
		}
	}

	type merged struct {
		domain []poly.Constraint
		count  poly.Polynomial
	}
	var pieces []merged
	keyOf := func(cons []poly.Constraint) string {
		keys := make([]string, len(cons))
		for i, c := range cons {
			keys[i] = c.String()
		}
		sort.Strings(keys)
		return fmt.Sprint(keys)
	}
	index := map[string]int{}
	for _, li := range contribs {
		for _, piece := range li.Count.Pieces {
			if piece.Count.IsZero() {
				continue
			}
			g := gist(piece.Domain, ctx)
			k := keyOf(g)
			if i, ok := index[k]; ok {
				pieces[i].count = pieces[i].count.Add(piece.Count)
			} else {
				index[k] = len(pieces)
				pieces = append(pieces, merged{domain: g, count: piece.Count})
			}
		}
	}
	if len(pieces) == 0 {
		return
	}

	var body []lang.Stmt
	for _, p := range pieces {
		countExpr, err := polyToExpr(p.count, rename)
		if err != nil {
			// Not expressible: conservatively fall back to dynamic.
			ins.plans[d.Name] = PlanDynamic
			ins.emitDynamicBoilerplate(d)
			return
		}
		ref := &lang.Ref{Name: d.Name}
		for _, it := range iters {
			ref.Indices = append(ref.Indices, &lang.Ref{Name: it})
		}
		add := addChk(lang.DefCS, ref, countExpr)
		if cond := consToCond(p.domain, rename); cond != nil {
			body = append(body, &lang.If{Cond: cond, Then: []lang.Stmt{add}})
		} else {
			body = append(body, add)
		}
	}
	ins.prologue = append(ins.prologue, loopNestOver(iters, d.Dims, body)...)
}

// emitDynamicBoilerplate declares the shadow counter for a dynamic variable
// and generates its prologue (counter zeroing + live-in def/e_def adds) and
// epilogue (final def adjustment + e_use adds), per Algorithm 3 and the
// Figure 7 scheme.
func (ins *instrumenter) emitDynamicBoilerplate(d *lang.VarDecl) {
	cnt := ins.names.fresh(d.Name + "_cnt")
	ins.cnts[d.Name] = cnt
	cd := &lang.VarDecl{Name: cnt, Type: lang.TypeInt}
	for _, dim := range d.Dims {
		cd.Dims = append(cd.Dims, lang.CloneExpr(dim))
	}
	ins.newDecls = append(ins.newDecls, cd)

	iters := make([]string, len(d.Dims))
	for k := range d.Dims {
		iters[k] = ins.names.fresh(fmt.Sprintf("dy%d", k))
	}
	mkRef := func(name string) *lang.Ref {
		r := &lang.Ref{Name: name}
		for _, it := range iters {
			r.Indices = append(r.Indices, &lang.Ref{Name: it})
		}
		return r
	}
	pro := []lang.Stmt{
		&lang.Assign{LHS: mkRef(cnt), Op: lang.OpSet, RHS: intLit(0)},
		addChk(lang.DefCS, mkRef(d.Name), one()),
		addChk(lang.EDefCS, mkRef(d.Name), one()),
	}
	ins.prologue = append(ins.prologue, loopNestOver(iters, d.Dims, pro)...)

	epi := []lang.Stmt{
		addChk(lang.DefCS, mkRef(d.Name),
			&lang.Bin{Op: lang.BinSub, L: mkRef(cnt), R: one()}),
		addChk(lang.EUseCS, mkRef(d.Name), one()),
	}
	ins.epilogue = append(ins.epilogue, loopNestOver(iters, d.Dims, epi)...)
}

// rewrite instruments a statement list.
func (ins *instrumenter) rewrite(ss []lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range ss {
		switch x := s.(type) {
		case *lang.Assign:
			out = append(out, ins.rewriteAssign(x)...)
		case *lang.For:
			nf := &lang.For{Pos: x.Pos, Iter: x.Iter, Lo: x.Lo, Hi: x.Hi, Body: ins.rewrite(x.Body)}
			out = append(out, nf)
		case *lang.While:
			out = append(out, ins.rewriteWhile(x)...)
		case *lang.If:
			ni := &lang.If{Pos: x.Pos, Cond: x.Cond, Then: ins.rewrite(x.Then), Else: ins.rewrite(x.Else)}
			out = append(out, ni)
		default:
			out = append(out, s)
		}
	}
	return out
}

func (ins *instrumenter) rewriteWhile(x *lang.While) []lang.Stmt {
	plan := ins.insp[x]
	if plan == nil {
		return []lang.Stmt{&lang.While{Pos: x.Pos, Cond: x.Cond, Body: ins.rewrite(x.Body)}}
	}
	var out []lang.Stmt
	out = append(out, plan.preWhile...)
	body := []lang.Stmt{incr(&lang.Ref{Name: plan.iterName})}
	body = append(body, ins.rewrite(x.Body)...)
	out = append(out, &lang.While{Pos: x.Pos, Cond: x.Cond, Body: body})
	out = append(out, plan.postWhile...)
	return out
}

func (ins *instrumenter) rewriteAssign(x *lang.Assign) []lang.Stmt {
	st := ins.stmts[x]
	if st == nil {
		// Generated or unmodeled statement: pass through.
		return []lang.Stmt{x}
	}
	var pre, post []lang.Stmt

	// Use-checksum contributions for every read, per the read variable's
	// plan (Algorithm 3 lines 3-8).
	for ri := range st.Reads {
		read := &st.Reads[ri]
		switch ins.plans[read.Array] {
		case PlanControl:
			continue
		case PlanDynamic:
			pre = append(pre, addChk(lang.UseCS, refClone(read.Ref), one()))
			pre = append(pre, incr(ins.counterRef(read.Ref)))
		default: // static, inspector, invariant: plain use add
			pre = append(pre, addChk(lang.UseCS, refClone(read.Ref), one()))
		}
	}

	// Def-checksum contributions for the write (Algorithm 3 lines 9-18).
	w := &st.Write
	switch ins.plans[w.Array] {
	case PlanControl:
		// untracked
	case PlanStatic:
		post = append(post, ins.staticDefAdds(st)...)
	case PlanDynamic:
		cnt := ins.counterRef(x.LHS)
		pre = append(pre,
			addChk(lang.DefCS, refClone(x.LHS), &lang.Bin{Op: lang.BinSub, L: cnt, R: one()}),
			addChk(lang.EUseCS, refClone(x.LHS), one()),
		)
		post = append(post,
			addChk(lang.DefCS, refClone(x.LHS), one()),
			addChk(lang.EDefCS, refClone(x.LHS), one()),
			&lang.Assign{LHS: ins.counterRef(x.LHS), Op: lang.OpSet, RHS: intLit(0)},
		)
	case PlanInspector:
		post = append(post, ins.inspectorDefAdds(x)...)
	case PlanInvariant:
		// Invariant arrays are unwritten inside their loop; a write would
		// have failed inspector qualification, so this is a write outside
		// any inspector loop — impossible by the untouched-outside rule.
		panic("instrument: write to inspector-invariant array " + w.Array)
	}

	out := append(pre, x)
	return append(out, post...)
}

// staticDefAdds emits the guarded def-checksum additions for a statically
// counted definition: one add per non-zero use-count piece, guarded by the
// piece domain gisted against the statement's iteration domain (Figure 5).
func (ins *instrumenter) staticDefAdds(st *pdg.Statement) []lang.Stmt {
	dc := ins.uc.Defs[st]
	if dc == nil {
		return nil
	}
	// Gist each piece's domain against the iteration domain, then merge
	// pieces with identical residual guards across all contributions
	// (summing their counts) so one guarded add covers them.
	type merged struct {
		domain []poly.Constraint
		count  poly.Polynomial
	}
	var pieces []merged
	index := map[string]int{}
	keyOf := func(cons []poly.Constraint) string {
		keys := make([]string, len(cons))
		for i, c := range cons {
			keys[i] = c.String()
		}
		sort.Strings(keys)
		return fmt.Sprint(keys)
	}
	for _, contrib := range dc.Contribs {
		for _, piece := range contrib.Count.Pieces {
			if piece.Count.IsZero() {
				continue
			}
			guard := gist(piece.Domain, st.Domain.Cons)
			k := keyOf(guard)
			if i, ok := index[k]; ok {
				pieces[i].count = pieces[i].count.Add(piece.Count)
			} else {
				index[k] = len(pieces)
				pieces = append(pieces, merged{domain: guard, count: piece.Count})
			}
		}
	}
	var out []lang.Stmt
	for _, p := range pieces {
		countExpr, err := polyToExpr(p.count, nil)
		if err != nil {
			// Unexpressible count: should not happen for affine counts,
			// but degrade to a guard-free skip rather than fail.
			continue
		}
		add := addChk(lang.DefCS, refClone(st.Node.LHS), countExpr)
		if cond := consToCond(p.domain, nil); cond != nil {
			out = append(out, &lang.If{Cond: cond, Then: []lang.Stmt{add}})
		} else {
			out = append(out, add)
		}
	}
	return out
}

// counterRef builds a reference to the shadow counter cell matching ref.
func (ins *instrumenter) counterRef(ref *lang.Ref) *lang.Ref {
	cnt := ins.cnts[ref.Name]
	if cnt == "" {
		panic("instrument: no counter for " + ref.Name)
	}
	r := &lang.Ref{Name: cnt}
	for _, ix := range ref.Indices {
		r.Indices = append(r.Indices, lang.CloneExpr(ix))
	}
	return r
}

// gist removes piece-domain constraints implied by the statement domain
// together with the remaining piece constraints (so guards match the paper's
// Figure 5 "if j <= n-2" rather than repeating the loop bounds or carrying
// redundant bounds accumulated during counting). Removal iterates to a fixed
// point.
func gist(cons, context []poly.Constraint) []poly.Constraint {
	out := append([]poly.Constraint(nil), cons...)
	impliedBy := func(ctx []poly.Constraint, c poly.Constraint) bool {
		for _, neg := range c.Negate() {
			sys := append(append([]poly.Constraint(nil), ctx...), neg)
			empty, exact := poly.UnionSet(poly.BasicSet{Tuple: "g", Cons: sys}).IsEmpty()
			if !empty || !exact {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(out); {
		ctx := append([]poly.Constraint(nil), context...)
		ctx = append(ctx, out[:i]...)
		ctx = append(ctx, out[i+1:]...)
		if impliedBy(ctx, out[i]) {
			out = append(out[:i], out[i+1:]...)
			continue
		}
		i++
	}
	return out
}

// sortedPlanNames returns variable names sorted, for deterministic reports.
func (r Report) sortedPlanNames() []string {
	names := make([]string, 0, len(r.Plans))
	for n := range r.Plans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the report: per-variable plans, optimization counts, and
// phase timings.
func (r Report) String() string {
	s := ""
	for _, n := range r.sortedPlanNames() {
		s += fmt.Sprintf("%s: %s\n", n, r.Plans[n])
	}
	s += fmt.Sprintf("inspectors hoisted: %d, split: %v\n", r.InspectorsHoisted, r.SplitApplied)
	if r.SplitApplied {
		s += fmt.Sprintf("split segments added: %d\n", r.SplitSegments)
	}
	if r.ChecksumStmts > 0 {
		s += fmt.Sprintf("checksum statements inserted: %d\n", r.ChecksumStmts)
	}
	for _, pt := range r.Phases {
		s += fmt.Sprintf("phase %-22s %v\n", pt.Phase, pt.Duration)
	}
	return s
}
