package faults

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"defuse/internal/checksum"
	"defuse/internal/wal"
	"defuse/rt"
	"defuse/telemetry"
)

// This file is the hardened campaign driver: a worker pool runs injection
// trials in fixed-size chunks, every trial derives its own deterministic
// sub-seed, the whole campaign is context-cancellable with per-trial
// timeouts, and completed chunks are checkpointed to a JSON file so a killed
// run resumes where it left off. Because every tally is a sum over
// independently seeded trials, the final CoverageResult is byte-identical
// regardless of worker count, chunk completion order, or interruptions.

// DefaultChunkSize is the number of trials per checkpointable work unit.
const DefaultChunkSize = 256

// CampaignSchema identifies the campaign result JSON document.
const CampaignSchema = "defuse/faultcov/v2"

// checkpointSchema identifies the resume checkpoint JSON document. v2 added
// the per-chunk detection-latency histogram; v3 added the skipped-trial count
// and folded the cell backend and address-fault kind into the fingerprint, so
// a checkpoint written against a different cell matrix (or by an older binary
// that tallied skips as detections) is refused rather than resumed.
const checkpointSchema = "defuse/faultcov-checkpoint/v3"

// Campaign runs a set of coverage cells on a worker pool.
type Campaign struct {
	Cells []CoverageConfig
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// TrialTimeout bounds each trial's supervised execution. A trial that
	// exceeds it aborts the campaign with an error (after checkpointing),
	// keeping results deterministic rather than skewing tallies.
	TrialTimeout time.Duration
	// CheckpointPath, when non-empty, is the JSON file completed chunks are
	// recorded in. An existing compatible checkpoint is resumed; a
	// checkpoint written by a different campaign configuration is rejected.
	CheckpointPath string
	// ChunkSize overrides DefaultChunkSize (the checkpoint granularity).
	ChunkSize int
	// Trace, when non-nil, receives campaign lifecycle events in addition
	// to whatever the per-cell sinks stream.
	Trace telemetry.Sink

	// pools hands each worker a reusable per-operator checksum shard, so
	// epoch trials recycle one tracker and counter table per (worker, kind)
	// instead of allocating fresh ones per trial. Shard state never leaks
	// between trials: every trial Resets its shard tracker on entry.
	poolMu sync.Mutex
	pools  map[checksum.Kind]*rt.ShardedTracker
}

// shardPool returns (building on first use) the campaign's sharded tracker
// for one checksum operator.
func (c *Campaign) shardPool(k checksum.Kind) *rt.ShardedTracker {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.pools == nil {
		c.pools = map[checksum.Kind]*rt.ShardedTracker{}
	}
	p := c.pools[k]
	if p == nil {
		p = rt.NewShardedWith(k).SetTelemetry(c.Trace, nil)
		c.pools[k] = p
	}
	return p
}

// drainPools merges whatever the workers left in their shards (normally
// nothing — Close already merged) and emits the shard.drain boundary event
// per pool, marking the campaign's trackers quiescent.
func (c *Campaign) drainPools() {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	for _, p := range c.pools {
		p.Drain()
	}
}

// workerState is one pool worker's reusable per-chunk scratch: the classic
// mode's data buffer and the epoch mode's checksum shards, one per operator.
type workerState struct {
	c      *Campaign
	buf    []uint64
	shards map[checksum.Kind]*rt.Shard
}

// shard returns the worker's shard for an operator, taking one from the
// campaign pool on first use.
func (ws *workerState) shard(k checksum.Kind) *rt.Shard {
	if ws.shards == nil {
		ws.shards = map[checksum.Kind]*rt.Shard{}
	}
	sh := ws.shards[k]
	if sh == nil {
		sh = ws.c.shardPool(k).Shard()
		ws.shards[k] = sh
	}
	return sh
}

// close retires the worker's shards back into their pools.
func (ws *workerState) close() {
	for _, sh := range ws.shards {
		sh.Close()
	}
}

// CampaignResult aggregates the campaign's cells.
type CampaignResult struct {
	Schema string `json:"schema"`
	// Completed is false when the campaign was interrupted; the checkpoint
	// file then holds the finished chunks.
	Completed bool `json:"completed"`
	// ResumedChunks counts chunks restored from the checkpoint file rather
	// than re-run.
	ResumedChunks int `json:"resumed_chunks,omitempty"`
	// Cells are JSON-friendly summaries, one per configured cell.
	Cells []CellReport `json:"cells"`
	// Results are the raw per-cell results, index-aligned with Cells.
	Results []CoverageResult `json:"-"`
}

// CellReport is the flat JSON summary of one cell's outcome.
type CellReport struct {
	Operator             string  `json:"operator"`
	Words                int     `json:"words"`
	BitFlips             int     `json:"bit_flips"`
	Pattern              string  `json:"pattern"`
	Scheme               string  `json:"scheme"`
	Trials               int     `json:"trials"`
	Seed                 int64   `json:"seed"`
	Epochs               int     `json:"epochs,omitempty"`
	EndOnlyVerify        bool    `json:"end_only_verify,omitempty"`
	Recover              bool    `json:"recover,omitempty"`
	Target               string  `json:"target,omitempty"`
	Hardened             bool    `json:"hardened,omitempty"`
	Backend              string  `json:"backend,omitempty"`
	AddrFault            string  `json:"addr_fault,omitempty"`
	Skipped              int     `json:"skipped,omitempty"`
	Undetected           int     `json:"undetected"`
	UndetectedPercent    float64 `json:"undetected_percent"`
	Detected             int     `json:"detected"`
	MeanDetectionLatency float64 `json:"mean_detection_latency_epochs"`
	MaxDetectionLatency  int     `json:"max_detection_latency_epochs"`
	// DetectionLatency is the full per-cell latency distribution (cumulative
	// buckets over epoch bounds plus interpolated quantiles); present for
	// epoch cells with at least one detection.
	DetectionLatency    *LatencyReport `json:"detection_latency,omitempty"`
	Recovered           int            `json:"recovered"`
	RecoverySuccessRate float64        `json:"recovery_success_rate"`
	Tainted             int            `json:"tainted"`
	Retries             int64          `json:"retries"`
	Restarts            int64          `json:"restarts"`
	Rebuilds            int64          `json:"rebuilds,omitempty"`
	DetectorFaults      int64          `json:"detector_faults,omitempty"`
	CheckpointFaults    int64          `json:"checkpoint_faults,omitempty"`
	FalseNegatives      int            `json:"false_negatives,omitempty"`
	FalsePositives      int            `json:"false_positives,omitempty"`
}

// LatencyReport is a detection-latency histogram in report form: cumulative
// bucket counts over telemetry.EpochBuckets (Prometheus-style, with a
// closing +Inf bucket) and interpolated p50/p99/p999.
type LatencyReport struct {
	Buckets   []telemetry.BucketSnapshot `json:"buckets"`
	Quantiles telemetry.QuantileSummary  `json:"quantiles"`
}

// latencyReport renders a per-bucket count slice (EpochBuckets bounds plus
// overflow) as a LatencyReport, or nil when empty.
func latencyReport(hist []int64) *LatencyReport {
	var total uint64
	counts := make([]uint64, len(hist))
	for i, c := range hist {
		counts[i] = uint64(c)
		total += uint64(c)
	}
	if total == 0 {
		return nil
	}
	bounds := telemetry.EpochBuckets()
	rep := &LatencyReport{
		Quantiles: telemetry.QuantileSummary{
			Count: total,
			P50:   telemetry.QuantileFromBuckets(bounds, counts, 0.50),
			P99:   telemetry.QuantileFromBuckets(bounds, counts, 0.99),
			P999:  telemetry.QuantileFromBuckets(bounds, counts, 0.999),
		},
	}
	cum := uint64(0)
	for i := range counts {
		cum += counts[i]
		le := "+Inf"
		if i < len(bounds) {
			le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
		}
		rep.Buckets = append(rep.Buckets, telemetry.BucketSnapshot{LE: le, Count: cum})
	}
	return rep
}

// Report renders the result as its JSON summary row.
func (r CoverageResult) Report() CellReport {
	rep := CellReport{
		Operator:             r.Kind.String(),
		Words:                r.Words,
		BitFlips:             r.BitFlips,
		Pattern:              r.Pattern.String(),
		Scheme:               r.scheme(),
		Trials:               r.Trials,
		Seed:                 r.Seed,
		Epochs:               r.Epochs,
		EndOnlyVerify:        r.EndOnlyVerify,
		Recover:              r.Recover,
		Undetected:           r.Undetected,
		UndetectedPercent:    r.UndetectedPercent(),
		Detected:             r.Detected,
		MeanDetectionLatency: r.MeanDetectionLatency(),
		MaxDetectionLatency:  r.LatencyMax,
		Recovered:            r.Recovered,
		RecoverySuccessRate:  r.RecoveryRate(),
		Tainted:              r.Tainted,
		Retries:              r.Retries,
		Restarts:             r.Restarts,
		Rebuilds:             r.Rebuilds,
		DetectorFaults:       r.DetectorFaults,
		CheckpointFaults:     r.CheckpointFaults,
		FalseNegatives:       r.FalseNegatives,
		FalsePositives:       r.FalsePositives,
	}
	if r.Target != TargetData {
		rep.Target = r.Target.String()
		rep.Hardened = r.Hardened
	}
	if r.Backend != BackendChecksum {
		rep.Backend = r.Backend.String()
	}
	if r.AddrFault != AddrNone {
		rep.AddrFault = r.AddrFault.String()
	}
	rep.Skipped = r.Skipped
	if r.Epochs > 0 {
		rep.DetectionLatency = latencyReport(r.LatencyHist)
	}
	return rep
}

// Gate inspects a finished campaign with a CI gate's eyes: it returns a
// non-nil error if the campaign is incomplete, recorded any undetected
// corruption, any false negative or false positive, any trial that degraded
// (tainted), or — in recovery-enabled cells — any detected corruption that
// was not steered back to a verified correct state. cmd/faultcov's -gate
// flag exits non-zero on this error so CI can block regressions.
func (r *CampaignResult) Gate() error {
	if !r.Completed {
		return fmt.Errorf("faults: gate: campaign incomplete")
	}
	for i, res := range r.Results {
		cell := fmt.Sprintf("cell %d (%s)", i, res.String())
		switch {
		case res.Undetected > 0:
			return fmt.Errorf("faults: gate: %s: %d undetected corruptions", cell, res.Undetected)
		case res.FalseNegatives > 0:
			return fmt.Errorf("faults: gate: %s: %d false negatives", cell, res.FalseNegatives)
		case res.FalsePositives > 0:
			return fmt.Errorf("faults: gate: %s: %d false positives", cell, res.FalsePositives)
		case res.Tainted > 0:
			return fmt.Errorf("faults: gate: %s: %d tainted (degraded) trials", cell, res.Tainted)
		case res.Recover && res.Recovered < res.Detected:
			return fmt.Errorf("faults: gate: %s: %d of %d detected corruptions not recovered",
				cell, res.Detected-res.Recovered, res.Detected)
		}
	}
	return nil
}

// trialSeed derives trial t's deterministic sub-seed from the cell seed with
// a splitmix64 step, so trials are independent of execution order and of one
// another's random streams.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + uint64(trial+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// trialTally is one trial's outcome.
type trialTally struct {
	undetected       bool
	detected         bool
	skipped          bool
	latency          int
	recovered        bool
	tainted          bool
	retries          int
	restarts         int
	rebuilds         int
	detectorFaults   int
	checkpointFaults int
	falseNegative    bool
	falsePositive    bool
}

// chunkTally is the checkpointable aggregate of one chunk of trials.
type chunkTally struct {
	Start      int   `json:"start"`
	Count      int   `json:"count"`
	Undetected int   `json:"undetected"`
	Detected   int   `json:"detected"`
	LatencySum int64 `json:"latency_sum,omitempty"`
	LatencyMax int   `json:"latency_max,omitempty"`
	// LatencyHist counts detected trials per telemetry.EpochBuckets bound
	// (plus a trailing overflow bucket), so the merged campaign report can
	// carry the full distribution, not just mean and max.
	LatencyHist      []int64 `json:"latency_hist,omitempty"`
	Skipped          int     `json:"skipped,omitempty"`
	Recovered        int     `json:"recovered,omitempty"`
	Tainted          int     `json:"tainted,omitempty"`
	Retries          int64   `json:"retries,omitempty"`
	Restarts         int64   `json:"restarts,omitempty"`
	Rebuilds         int64   `json:"rebuilds,omitempty"`
	DetectorFaults   int64   `json:"detector_faults,omitempty"`
	CheckpointFaults int64   `json:"checkpoint_faults,omitempty"`
	FalseNegatives   int     `json:"false_negatives,omitempty"`
	FalsePositives   int     `json:"false_positives,omitempty"`
}

func (t *chunkTally) add(o trialTally) {
	if o.undetected {
		t.Undetected++
	}
	if o.detected {
		t.Detected++
		t.LatencySum += int64(o.latency)
		if o.latency > t.LatencyMax {
			t.LatencyMax = o.latency
		}
		bounds := telemetry.EpochBuckets()
		if t.LatencyHist == nil {
			t.LatencyHist = make([]int64, len(bounds)+1)
		}
		t.LatencyHist[sort.SearchFloat64s(bounds, float64(o.latency))]++
	}
	if o.skipped {
		t.Skipped++
	}
	if o.recovered {
		t.Recovered++
	}
	if o.tainted {
		t.Tainted++
	}
	t.Retries += int64(o.retries)
	t.Restarts += int64(o.restarts)
	t.Rebuilds += int64(o.rebuilds)
	t.DetectorFaults += int64(o.detectorFaults)
	t.CheckpointFaults += int64(o.checkpointFaults)
	if o.falseNegative {
		t.FalseNegatives++
	}
	if o.falsePositive {
		t.FalsePositives++
	}
}

type cellCheckpoint struct {
	Cell   int          `json:"cell"`
	Chunks []chunkTally `json:"chunks"`
}

type checkpointFile struct {
	Schema string           `json:"schema"`
	Key    uint64           `json:"key"`
	Cells  []cellCheckpoint `json:"cells"`
}

// fingerprint hashes the semantic campaign configuration so a checkpoint
// written by a different campaign cannot be resumed by accident.
func (c *Campaign) fingerprint(chunkSize int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "chunk=%d;", chunkSize)
	for _, cfg := range c.Cells {
		fmt.Fprintf(h, "%d|%d|%d|%d|%v|%d|%d|%d|%v|%v|%d|%d|%v|%d|%d;",
			cfg.Kind, cfg.Words, cfg.BitFlips, cfg.Pattern, cfg.Dual,
			cfg.Trials, cfg.Seed, cfg.Epochs, cfg.EndOnlyVerify, cfg.Recover,
			cfg.MaxRetries, cfg.Target, cfg.Hardened, cfg.Backend, cfg.AddrFault)
	}
	return h.Sum64()
}

type chunkJob struct{ cell, start, count int }

type chunkDone struct {
	cell  int
	tally chunkTally
	err   error
}

// Run executes the campaign. On context cancellation it checkpoints the
// finished chunks (when CheckpointPath is set) and returns the context error
// alongside the partial result; re-running the same campaign resumes from
// the checkpoint and produces the same final result as an uninterrupted run.
func (c *Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	if len(c.Cells) == 0 {
		return nil, fmt.Errorf("faults: campaign has no cells")
	}
	for i, cfg := range c.Cells {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
	}
	chunkSize := c.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	key := c.fingerprint(chunkSize)

	// done maps (cell, chunk start) to its finished tally.
	done := map[[2]int]chunkTally{}
	resumed := 0
	if c.CheckpointPath != "" {
		n, err := loadCheckpoint(c.CheckpointPath, key, done)
		if err != nil {
			return nil, err
		}
		resumed = n
	}

	var jobs []chunkJob
	total := 0
	for ci, cfg := range c.Cells {
		for start := 0; start < cfg.Trials; start += chunkSize {
			total++
			count := chunkSize
			if start+count > cfg.Trials {
				count = cfg.Trials - start
			}
			if _, ok := done[[2]int{ci, start}]; ok {
				continue
			}
			jobs = append(jobs, chunkJob{cell: ci, start: start, count: count})
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobCh := make(chan chunkJob)
	resCh := make(chan chunkDone)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := &workerState{c: c}
			defer ws.close()
			for job := range jobCh {
				tally, err := c.runChunk(runCtx, job, ws)
				resCh <- chunkDone{cell: job.cell, tally: tally, err: err}
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-runCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	var firstErr error
	for d := range resCh {
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
				cancel()
			}
			continue
		}
		done[[2]int{d.cell, d.tally.Start}] = d.tally
		if c.CheckpointPath != "" {
			if err := c.writeCheckpoint(key, done); err != nil && firstErr == nil {
				firstErr = err
				cancel()
			}
		}
	}
	c.drainPools()
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = err
		}
	}

	res := &CampaignResult{
		Schema:        CampaignSchema,
		Completed:     len(done) == total && firstErr == nil,
		ResumedChunks: resumed,
	}
	for ci, cfg := range c.Cells {
		r := CoverageResult{CoverageConfig: cfg}
		for start := 0; start < cfg.Trials; start += chunkSize {
			t, ok := done[[2]int{ci, start}]
			if !ok {
				continue
			}
			r.Undetected += t.Undetected
			r.Detected += t.Detected
			r.LatencySum += t.LatencySum
			if t.LatencyMax > r.LatencyMax {
				r.LatencyMax = t.LatencyMax
			}
			if len(t.LatencyHist) > 0 {
				if len(r.LatencyHist) < len(t.LatencyHist) {
					grown := make([]int64, len(t.LatencyHist))
					copy(grown, r.LatencyHist)
					r.LatencyHist = grown
				}
				for bi, n := range t.LatencyHist {
					r.LatencyHist[bi] += n
				}
			}
			r.Skipped += t.Skipped
			r.Recovered += t.Recovered
			r.Tainted += t.Tainted
			r.Retries += t.Retries
			r.Restarts += t.Restarts
			r.Rebuilds += t.Rebuilds
			r.DetectorFaults += t.DetectorFaults
			r.CheckpointFaults += t.CheckpointFaults
			r.FalseNegatives += t.FalseNegatives
			r.FalsePositives += t.FalsePositives
		}
		res.Results = append(res.Results, r)
		res.Cells = append(res.Cells, r.Report())
	}
	return res, firstErr
}

// runChunk executes one chunk's trials sequentially on a worker. Cell
// instruments are resolved once per chunk — the registry lookup takes a
// mutex and renders labels, which a per-trial call would pay thousands of
// times over — and epoch trials fold through the worker's reusable shard.
func (c *Campaign) runChunk(ctx context.Context, job chunkJob, ws *workerState) (chunkTally, error) {
	cfg := c.Cells[job.cell]
	tally := chunkTally{Start: job.start, Count: job.count}
	inst := newCellInstruments(cfg)
	// One chunk span roots the trace for this work unit; per-trial spans are
	// its children, labeled by the cell so a Perfetto view groups campaign
	// work by (cell, chunk) lanes. Attributes are built once per chunk.
	var cellAttrs []telemetry.Attr
	if cfg.Tracer.Enabled() {
		cellAttrs = []telemetry.Attr{
			telemetry.Int("cell", job.cell),
			telemetry.String("scheme", cfg.scheme()),
			telemetry.Int("words", cfg.Words),
			telemetry.Int("flips", cfg.BitFlips),
		}
		if cfg.Target != TargetData {
			cellAttrs = append(cellAttrs, telemetry.String("target", cfg.Target.String()))
		}
	}
	chunk := cfg.Tracer.Start(telemetry.SpanContext{}, "chunk",
		append([]telemetry.Attr{telemetry.Int("start", job.start), telemetry.Int("count", job.count)}, cellAttrs...)...)
	defer chunk.End()
	if cfg.Epochs > 0 {
		// The DME backend runs forked interpreter variants, not the worker's
		// checksum shard; only take a shard from the pool when it will fold.
		var sh *rt.Shard
		if cfg.Backend != BackendDME {
			sh = ws.shard(cfg.Kind)
		}
		for i := 0; i < job.count; i++ {
			if err := ctx.Err(); err != nil {
				return tally, err
			}
			trial := job.start + i
			tctx, tcancel := ctx, context.CancelFunc(func() {})
			if c.TrialTimeout > 0 {
				tctx, tcancel = context.WithTimeout(ctx, c.TrialTimeout)
			}
			tspan := cfg.Tracer.Start(chunk.Context(), "trial",
				append([]telemetry.Attr{telemetry.Int("trial", trial)}, cellAttrs...)...)
			var out trialTally
			var err error
			if cfg.Backend == BackendDME {
				out, err = runDMETrial(tctx, cfg, trial, inst, tspan.Context())
			} else {
				out, err = runEpochTrial(tctx, cfg, trial, sh, inst, tspan.Context())
			}
			tcancel()
			if err != nil {
				tspan.EndErr(err)
				return tally, fmt.Errorf("faults: epoch trial %d: %w", trial, err)
			}
			tspan.End(telemetry.Bool("detected", out.detected), telemetry.Bool("recovered", out.recovered))
			tally.add(out)
		}
		return tally, nil
	}

	if len(ws.buf) < cfg.Words {
		ws.buf = make([]uint64, cfg.Words)
	}
	r := &classicRunner{cfg: cfg, data: ws.buf[:cfg.Words], inst: inst}
	for i := 0; i < job.count; i++ {
		if err := ctx.Err(); err != nil {
			return tally, err
		}
		trial := job.start + i
		tspan := cfg.Tracer.Start(chunk.Context(), "trial",
			append([]telemetry.Attr{telemetry.Int("trial", trial)}, cellAttrs...)...)
		out := r.trial(trial)
		tspan.End(telemetry.Bool("detected", out.detected))
		tally.add(out)
	}
	return tally, nil
}

// classicRunner executes the paper's single-shot Table 1 trials against a
// worker-local buffer.
type classicRunner struct {
	cfg          CoverageConfig
	data         []uint64
	inst         cellInstruments
	baseReady    bool
	base1, base2 uint64
}

func (r *classicRunner) trial(trial int) trialTally {
	cfg := r.cfg
	in := NewInjector(trialSeed(cfg.Seed, trial))
	if cfg.Pattern == Random {
		in.Fill(r.data, Random)
		r.base1, r.base2 = initialSums(cfg, r.data)
	} else if !r.baseReady {
		// Constant patterns carry identical data in every trial: fill and
		// compute the base sums once per chunk (flips are undone below).
		in.Fill(r.data, cfg.Pattern)
		r.base1, r.base2 = initialSums(cfg, r.data)
		r.baseReady = true
	}
	flips := in.FlipBits(r.data, cfg.BitFlips)
	var s1, s2 uint64
	if cfg.Dual {
		s1, s2 = checksum.DualSum(cfg.Kind, r.data)
	} else {
		s1 = checksum.Sum(cfg.Kind, r.data)
	}
	undetected := s1 == r.base1 && (!cfg.Dual || s2 == r.base2)
	r.inst.record(undetected)
	if cfg.Trace != nil {
		coords := make([]map[string]any, len(flips))
		for i, f := range flips {
			coords[i] = map[string]any{"word": f.Word, "bit": f.Bit}
		}
		telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
			"trial": trial, "flips": coords, "scheme": cfg.scheme(),
			"words": cfg.Words, "pattern": cfg.Pattern.String(),
		})
		if undetected {
			// The checksums matched despite the error: the injected
			// fault escaped (verify passed, wrongly).
			telemetry.Emit(cfg.Trace, telemetry.EvVerifyOK, map[string]any{
				"trial": trial, "escaped": true,
			})
		} else {
			telemetry.Emit(cfg.Trace, telemetry.EvDetection, map[string]any{
				"trial": trial,
			})
		}
	}
	// Undo the flips so constant-pattern trials can reuse the base sums.
	for _, f := range flips {
		r.data[f.Word] ^= 1 << uint(f.Bit)
	}
	return trialTally{undetected: undetected, detected: !undetected}
}

// cellLabels renders the metric labels identifying one cell.
func cellLabels(cfg CoverageConfig) []telemetry.Label {
	labels := []telemetry.Label{
		{Key: "flips", Value: strconv.Itoa(cfg.BitFlips)},
		{Key: "words", Value: strconv.Itoa(cfg.Words)},
		{Key: "pattern", Value: cfg.Pattern.String()},
		{Key: "scheme", Value: cfg.scheme()},
	}
	if cfg.Epochs > 0 {
		labels = append(labels, telemetry.Label{Key: "epochs", Value: strconv.Itoa(cfg.Epochs)})
	}
	if cfg.Target != TargetData {
		detector := "unhardened"
		if cfg.Hardened {
			detector = "hardened"
		}
		labels = append(labels,
			telemetry.Label{Key: "target", Value: cfg.Target.String()},
			telemetry.Label{Key: "detector", Value: detector})
	}
	if cfg.Backend != BackendChecksum {
		labels = append(labels, telemetry.Label{Key: "backend", Value: cfg.Backend.String()})
	}
	if cfg.AddrFault != AddrNone {
		labels = append(labels, telemetry.Label{Key: "fault", Value: cfg.AddrFault.String()})
	}
	return labels
}

// cellInstruments caches one cell's telemetry instruments so the hot trial
// loop increments atomics instead of going through the registry's mutexed,
// label-rendering lookup on every trial. Instruments from a nil registry are
// unregistered but functional, so the disabled path needs no guards.
type cellInstruments struct {
	trials     *telemetry.Counter
	undetected *telemetry.Counter
	recovered  *telemetry.Counter
	latency    *telemetry.Histogram
	scrubPass  *telemetry.Counter
	scrubFail  *telemetry.Counter
}

// newCellInstruments resolves the instruments for one cell.
func newCellInstruments(cfg CoverageConfig) cellInstruments {
	labels := cellLabels(cfg)
	return cellInstruments{
		trials:     cfg.Metrics.Counter("defuse_faultcov_trials_total", labels...),
		undetected: cfg.Metrics.Counter("defuse_faultcov_undetected_total", labels...),
		recovered:  cfg.Metrics.Counter("defuse_recovery_recovered_total", labels...),
		latency: cfg.Metrics.Histogram("defuse_detection_latency_epochs",
			telemetry.EpochBuckets(), labels...),
		scrubPass: cfg.Metrics.Counter("defuse_scrub_total",
			telemetry.Label{Key: "result", Value: "pass"}),
		scrubFail: cfg.Metrics.Counter("defuse_scrub_total",
			telemetry.Label{Key: "result", Value: "fail"}),
	}
}

// record tallies one trial's verdict.
func (i cellInstruments) record(undetected bool) {
	i.trials.Inc()
	if undetected {
		i.undetected.Inc()
	}
}

// loadCheckpoint merges a checkpoint file into done, returning the number of
// chunks restored. A missing file is not an error; a key mismatch is.
func loadCheckpoint(path string, key uint64, done map[[2]int]chunkTally) (int, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var cp checkpointFile
	if err := json.Unmarshal(raw, &cp); err != nil {
		return 0, fmt.Errorf("faults: corrupt checkpoint %s: %w", path, err)
	}
	if cp.Schema != checkpointSchema {
		return 0, fmt.Errorf("faults: checkpoint %s has schema %q, want %q", path, cp.Schema, checkpointSchema)
	}
	if cp.Key != key {
		return 0, fmt.Errorf("faults: checkpoint %s belongs to a different campaign configuration", path)
	}
	n := 0
	for _, cell := range cp.Cells {
		for _, ch := range cell.Chunks {
			done[[2]int{cell.Cell, ch.Start}] = ch
			n++
		}
	}
	return n, nil
}

// writeCheckpoint atomically persists the finished chunks.
func (c *Campaign) writeCheckpoint(key uint64, done map[[2]int]chunkTally) error {
	cp := checkpointFile{Schema: checkpointSchema, Key: key}
	byCell := map[int][]chunkTally{}
	for k, t := range done {
		byCell[k[0]] = append(byCell[k[0]], t)
	}
	cells := make([]int, 0, len(byCell))
	for ci := range byCell {
		cells = append(cells, ci)
	}
	sort.Ints(cells)
	for _, ci := range cells {
		chunks := byCell[ci]
		sort.Slice(chunks, func(i, j int) bool { return chunks[i].Start < chunks[j].Start })
		cp.Cells = append(cp.Cells, cellCheckpoint{Cell: ci, Chunks: chunks})
	}
	raw, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return err
	}
	// Temp-write + fsync + rename + dir fsync: a campaign killed mid-write
	// leaves either the previous checkpoint or the complete new one, never a
	// truncated JSON that a resume would reject as corrupt.
	return wal.WriteFileAtomic(c.CheckpointPath, raw, 0o644)
}
