// Command overhead reproduces Figures 10 and 11 of the paper: the normalized
// runtimes of the Resilient (Algorithm 3) and Resilient-Optimized (index-set
// splitting + inspector hoisting) variants of the Table 2 benchmarks, and
// the estimated runtimes under a hardware checksum functional unit.
//
// Usage:
//
//	overhead [-fig 10|11|all] [-scale 0.01] [-bench name] [-list]
//
// Scale multiplies the paper's problem sizes; the kernels execute on the
// package's instruction-counting interpreter, so the op-count columns are
// deterministic and machine-independent.
package main

import (
	"flag"
	"fmt"
	"os"

	"defuse/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 10, 11, or all")
	scale := flag.Float64("scale", 0.004, "problem-size scale relative to the paper's sizes")
	one := flag.String("bench", "", "run a single benchmark by Table 2 name")
	list := flag.Bool("list", false, "print Table 2 (benchmarks and problem sizes) and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-46s %s\n", "Benchmark", "Description", "Paper problem size")
		for _, b := range bench.Suite() {
			fmt.Printf("%-10s %-46s %s\n", b.Name, b.Description, b.PaperSize)
		}
		return
	}

	var rows10 []bench.Figure10Row
	var rows11 []bench.Figure11Row
	if *one != "" {
		b, err := bench.ByName(*one)
		if err != nil {
			fatal(err)
		}
		r10, r11, err := bench.RunBenchmark(b, *scale)
		if err != nil {
			fatal(err)
		}
		rows10, rows11 = []bench.Figure10Row{r10}, []bench.Figure11Row{r11}
	} else {
		var err error
		rows10, rows11, err = bench.Figure10(*scale)
		if err != nil {
			fatal(err)
		}
	}

	if *fig == "10" || *fig == "all" {
		fmt.Println("Figure 10: normalized running time of the resilient codes (software-only)")
		fmt.Println("(paper geomeans on its icc/Xeon testbed: resilient 1.788, optimized 1.402)")
		fmt.Println()
		fmt.Print(bench.FormatFigure10(rows10))
		fmt.Println()
	}
	if *fig == "11" || *fig == "all" {
		fmt.Println("Figure 11: estimated normalized runtime with a hardware checksum unit")
		fmt.Println("(paper: largest overheads 4-10%, ~3% geomean excluding strsm)")
		fmt.Println()
		fmt.Print(bench.FormatFigure11(rows11))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overhead:", err)
	os.Exit(1)
}
