// Package addrsum checksums the *address stream* of an instrumented
// execution, complementing the data def/use checksums in internal/checksum.
//
// The data checksums protect the values that flow through memory, but they
// are structurally blind to one fault shape: an address-generation error
// that redirects a whole read-modify-write to a different *valid* tracked
// word. The load observes a legitimate value (so every use fold is a value
// the detector expects to see), the store writes the legitimately updated
// value back to the same wrong word (so the boundary finalize over actual
// memory balances exactly), and the def/use fold closes at zero while the
// program's final state is wrong — see DESIGN.md for the full ledger.
//
// Following PRESAGE (PAPERS.md), addrsum checksums the index stream itself:
// every instrumented access folds a pair-bound key of (intended index,
// effective index) into per-stream accumulators. The intent side is derived
// from the register-resident index the program computed (redundantly
// recomputable from control flow); the seen side from the address the access
// actually touched. A clean execution folds identical keys into both sides;
// any redirect, bit-flipped index, swap, or aliased read-modify-write makes
// the two sides diverge with probability 1-2^-64 per access, regardless of
// what data the wrong location held.
//
// The accumulators mirror checksum.Pair's self-verification discipline:
// each stream keeps a shadow-encoded redundant copy (inverted and rotated,
// with rotations distinct from the data pair's so a single stuck-at fault
// cannot strike both detectors identically), merges commutatively for
// sharded execution, and seals per-epoch state under a chained digest for
// checkpoint/rollback exactly like rt.EpochState.
package addrsum

import (
	"errors"
	"fmt"
	"math/bits"
)

// Stream identifies one of the four address accumulators.
type Stream int

const (
	// LoadIntent accumulates the key each load *meant* to touch.
	LoadIntent Stream = iota
	// LoadSeen accumulates the key each load actually touched.
	LoadSeen
	// StoreIntent accumulates the key each store *meant* to touch.
	StoreIntent
	// StoreSeen accumulates the key each store actually touched.
	StoreSeen

	numStreams
)

var streamNames = [numStreams]string{"load_intent", "load_seen", "store_intent", "store_seen"}

func (s Stream) String() string {
	if s < 0 || s >= numStreams {
		return fmt.Sprintf("Stream(%d)", int(s))
	}
	return streamNames[s]
}

// shadowRot holds per-stream rotation amounts for the shadow encoding.
// Deliberately disjoint from checksum.Pair's {11,23,41,53}: a fault model
// where one corruption pattern strikes several encoded words should never
// find the data and address detectors encoded the same way.
var shadowRot = [numStreams]int{7, 19, 37, 47}

func encShadow(v uint64, s Stream) uint64 { return ^bits.RotateLeft64(v, shadowRot[s]) }
func decShadow(e uint64, s Stream) uint64 { return bits.RotateLeft64(^e, -shadowRot[s]) }

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Key binds an access's intended index to the index it actually touched.
// Binding the pair — rather than folding a plain multiset of effective
// addresses — is what catches swaps: two accesses that trade locations
// leave a multiset sum unchanged but diverge the pair-bound fold. The
// mixing is asymmetric in its arguments, so Key(i,j) != Key(j,i).
func Key(intent, effective int) uint64 {
	return mix64(uint64(int64(intent))*0x9e3779b97f4a7c15 ^ mix64(uint64(int64(effective))))
}

// Tracker accumulates the four address streams with shadow-encoded
// redundant copies and carries the epoch index for seal/rollback.
type Tracker struct {
	acc    [numStreams]uint64
	shadow [numStreams]uint64
	loads  uint64
	stores uint64
	epoch  uint64
}

// NewTracker returns a zeroed tracker with freshly sealed shadows.
func NewTracker() *Tracker {
	t := &Tracker{}
	t.resealShadows()
	return t
}

func (t *Tracker) resealShadows() {
	for s := Stream(0); s < numStreams; s++ {
		t.shadow[s] = encShadow(t.acc[s], s)
	}
}

// fold adds key into stream s, updating primary and shadow together. The
// shadow is decoded, combined, and re-encoded — never recomputed from the
// primary — so a corrupted primary cannot silently heal its shadow.
func (t *Tracker) fold(s Stream, key uint64) {
	t.acc[s] += key
	t.shadow[s] = encShadow(decShadow(t.shadow[s], s)+key, s)
}

// Load folds one load: the program intended index intent, the access
// touched index effective. Clean hardware passes effective == intent.
func (t *Tracker) Load(intent, effective int) {
	t.fold(LoadIntent, Key(intent, intent))
	t.fold(LoadSeen, Key(intent, effective))
	t.loads++
}

// Store folds one store, mirroring Load.
func (t *Tracker) Store(intent, effective int) {
	t.fold(StoreIntent, Key(intent, intent))
	t.fold(StoreSeen, Key(intent, effective))
	t.stores++
}

// Accumulators returns the four primary accumulators
// (load intent/seen, store intent/seen).
func (t *Tracker) Accumulators() [4]uint64 { return t.acc }

// Shadows returns the encoded redundant copies, index-aligned with
// Accumulators.
func (t *Tracker) Shadows() [4]uint64 { return t.shadow }

// OpCounts returns the number of folded loads and stores.
func (t *Tracker) OpCounts() (loads, stores uint64) { return t.loads, t.stores }

// Merge folds other into t. Addition is commutative and associative, so
// per-shard trackers can merge in any order and any partition of the access
// stream yields the same totals — the property rt.ShardedTracker relies on.
// Shadows are decoded, combined, and re-encoded so corruption evidence in
// either operand survives the merge.
func (t *Tracker) Merge(other *Tracker) {
	for s := Stream(0); s < numStreams; s++ {
		t.acc[s] += other.acc[s]
		t.shadow[s] = encShadow(decShadow(t.shadow[s], s)+decShadow(other.shadow[s], s), s)
	}
	t.loads += other.loads
	t.stores += other.stores
}

// ScrubError reports a primary accumulator disagreeing with its shadow —
// evidence of a fault in the detector itself, not in the protected data.
type ScrubError struct {
	Stream  Stream
	Primary uint64
	Shadow  uint64 // decoded
}

func (e *ScrubError) Error() string {
	return fmt.Sprintf("addrsum: scrub: %v accumulator %#x disagrees with shadow %#x",
		e.Stream, e.Primary, e.Shadow)
}

// Scrub cross-checks every primary against its decoded shadow.
func (t *Tracker) Scrub() error {
	for s := Stream(0); s < numStreams; s++ {
		if dec := decShadow(t.shadow[s], s); dec != t.acc[s] {
			return &ScrubError{Stream: s, Primary: t.acc[s], Shadow: dec}
		}
	}
	return nil
}

// MismatchError reports an intent stream diverging from its seen stream:
// some access in the epoch touched a location other than the one the
// program computed.
type MismatchError struct {
	Op     string // "load" or "store"
	Intent uint64
	Seen   uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("addrsum: %s stream mismatch: intent %#x != seen %#x", e.Op, e.Intent, e.Seen)
}

// Verify checks that both seen streams equal their intent streams.
func (t *Tracker) Verify() error {
	if t.acc[LoadIntent] != t.acc[LoadSeen] {
		return &MismatchError{Op: "load", Intent: t.acc[LoadIntent], Seen: t.acc[LoadSeen]}
	}
	if t.acc[StoreIntent] != t.acc[StoreSeen] {
		return &MismatchError{Op: "store", Intent: t.acc[StoreIntent], Seen: t.acc[StoreSeen]}
	}
	return nil
}

// CorruptAccumulator flips one bit of a primary accumulator without
// touching its shadow — the detector-targeted fault the campaigns aim at
// the address checker itself. Scrub must catch it.
func (t *Tracker) CorruptAccumulator(s Stream, bit int) {
	t.acc[s] ^= 1 << (uint(bit) % 64)
}

// Reset zeroes all streams, counts, and the epoch index, resealing shadows.
func (t *Tracker) Reset() {
	t.acc = [numStreams]uint64{}
	t.loads, t.stores, t.epoch = 0, 0, 0
	t.resealShadows()
}

// ErrCheckpointCorrupt is returned when a sealed epoch state fails its
// integrity digest — the checkpoint itself took the fault.
var ErrCheckpointCorrupt = errors.New("addrsum: epoch checkpoint failed integrity check")

// EpochState is a sealed snapshot of the tracker at an epoch boundary,
// mirroring rt.EpochState: restorable verbatim on rollback, protected by a
// chained digest so a corrupted checkpoint is detected before it is
// trusted. rt's own WAL-pinned encoding cannot grow, so the address state
// seals separately with its own 12-word layout.
type EpochState struct {
	Index  uint64
	Acc    [4]uint64
	Loads  uint64
	Stores uint64
	Shadow [4]uint64

	sealed bool
	digest uint64
}

func (st *EpochState) computeDigest() uint64 {
	h := uint64(0x5129af7a21dc9b3d) ^ st.Index
	for _, a := range st.Acc {
		h = mix64(h ^ a)
	}
	h = mix64(h ^ st.Loads)
	h = mix64(h ^ st.Stores)
	for _, s := range st.Shadow {
		h = mix64(h ^ s)
	}
	return h
}

// Verify checks the seal.
func (st *EpochState) Verify() error {
	if !st.sealed || st.digest != st.computeDigest() {
		return ErrCheckpointCorrupt
	}
	return nil
}

// Digest exposes the seal for tests and journaling.
func (st *EpochState) Digest() uint64 { return st.digest }

// EncodedEpochStateSize is the fixed byte length of an encoded EpochState:
// index, four accumulators, two op counts, four shadows, digest.
const EncodedEpochStateSize = 12 * 8

// Encode serializes the sealed state, digest included, little-endian.
func (st *EpochState) Encode() []byte {
	buf := make([]byte, 0, EncodedEpochStateSize)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	put(st.Index)
	for _, a := range st.Acc {
		put(a)
	}
	put(st.Loads)
	put(st.Stores)
	for _, s := range st.Shadow {
		put(s)
	}
	put(st.digest)
	return buf
}

// DecodeEpochState reverses Encode and verifies the embedded digest.
func DecodeEpochState(buf []byte) (EpochState, error) {
	if len(buf) != EncodedEpochStateSize {
		return EpochState{}, fmt.Errorf("addrsum: encoded epoch state is %d bytes, want %d", len(buf), EncodedEpochStateSize)
	}
	get := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(buf[off+i]) << (8 * i)
		}
		return v
	}
	var st EpochState
	st.Index = get(0)
	for i := range st.Acc {
		st.Acc[i] = get(8 * (1 + i))
	}
	st.Loads = get(8 * 5)
	st.Stores = get(8 * 6)
	for i := range st.Shadow {
		st.Shadow[i] = get(8 * (7 + i))
	}
	st.digest = get(8 * 11)
	st.sealed = true
	if err := st.Verify(); err != nil {
		return EpochState{}, err
	}
	return st, nil
}

func (t *Tracker) snapshot() EpochState {
	st := EpochState{
		Index:  t.epoch,
		Acc:    t.acc,
		Loads:  t.loads,
		Stores: t.stores,
		Shadow: t.shadow,
		sealed: true,
	}
	st.digest = st.computeDigest()
	return st
}

// Epoch returns the current epoch index.
func (t *Tracker) Epoch() uint64 { return t.epoch }

// BeginEpoch seals and returns the tracker's state at the start of an
// epoch — the rollback point if the epoch fails verification.
func (t *Tracker) BeginEpoch() EpochState { return t.snapshot() }

// EndEpoch verifies the address streams at the epoch boundary. On success
// the epoch index advances and the newly sealed state is returned; on
// mismatch the tracker is left untouched for rollback.
func (t *Tracker) EndEpoch() (EpochState, error) {
	if err := t.Verify(); err != nil {
		return EpochState{}, err
	}
	t.epoch++
	return t.snapshot(), nil
}

func (t *Tracker) restore(st EpochState) {
	t.epoch = st.Index
	t.acc = st.Acc
	t.loads = st.Loads
	t.stores = st.Stores
	t.shadow = st.Shadow
}

// Rollback restores a sealed state after verifying its digest.
func (t *Tracker) Rollback(st EpochState) error {
	if err := st.Verify(); err != nil {
		return err
	}
	t.restore(st)
	return nil
}

// RollbackUnchecked restores without the digest check — for states whose
// integrity is vouched for elsewhere (e.g. just decoded from a CRC-framed
// WAL record).
func (t *Tracker) RollbackUnchecked(st EpochState) { t.restore(st) }
