package lang

import (
	"fmt"
	"strconv"
)

// Parser builds a Program from tokens.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete program:
//
//	program name(p1, p2, ...)
//	float A[n][n];
//	int cols[nz];
//	float temp;
//	<statements>
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// MustParse parses src and panics on error; intended for tests and embedded
// benchmark sources that are known-good.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(pos Pos, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf(t.Pos, "expected %v, found %v %q", k, t.Kind, t.Text)
	}
	return p.next(), nil
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	if _, err := p.expect(TokProgram); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: name.Text}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, id.Text)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}

	// Declarations: consecutive "float|int name[dims...][, name...];" lines.
	for p.cur().Kind == TokFloatKw || p.cur().Kind == TokIntKw {
		decls, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, decls...)
	}

	// Body statements until EOF.
	for p.cur().Kind != TokEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

func (p *Parser) parseDecl() ([]*VarDecl, error) {
	tt := p.next()
	typ := TypeFloat
	if tt.Kind == TokIntKw {
		typ = TypeInt
	}
	var decls []*VarDecl
	for {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Pos: id.Pos, Name: id.Text, Type: typ}
		for p.cur().Kind == TokLBracket {
			p.next()
			dim, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var body []Stmt
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, p.errf(p.cur().Pos, "unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.next() // consume }
	return body, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokFor:
		return p.parseFor()
	case TokWhile:
		return p.parseWhile()
	case TokIf:
		return p.parseIf()
	case TokAddToChksm:
		return p.parseAddToChksm()
	case TokAssertChecksums:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &AssertChecksums{Pos: t.Pos}, nil
	case TokIdent:
		// Either "Label: stmt" or an assignment.
		if p.toks[p.pos+1].Kind == TokColon {
			label := p.next().Text
			p.next() // colon
			inner, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			as, ok := inner.(*Assign)
			if !ok {
				return nil, p.errf(t.Pos, "label %q must precede an assignment", label)
			}
			as.Label = label
			return as, nil
		}
		return p.parseAssign()
	}
	return nil, p.errf(t.Pos, "unexpected token %v %q at statement start", t.Kind, t.Text)
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	iter, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokTo); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &For{Pos: t.Pos, Iter: iter.Text, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &While{Pos: t.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			els = []Stmt{inner}
		} else {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return &If{Pos: t.Pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseAddToChksm() (Stmt, error) {
	t := p.next() // add_to_chksm
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	csTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	cs, ok := ParseCSName(csTok.Text)
	if !ok {
		return nil, p.errf(csTok.Pos, "unknown checksum %q (want def_cs, use_cs, e_def_cs, or e_use_cs)", csTok.Text)
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	value, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	count, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &AddToChecksum{Pos: t.Pos, CS: cs, Value: value, Count: count}, nil
}

func (p *Parser) parseAssign() (Stmt, error) {
	lhsTok := p.cur()
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	var op AssignOp
	switch p.cur().Kind {
	case TokAssign:
		op = OpSet
	case TokPlusEq:
		op = OpAdd
	case TokMinusEq:
		op = OpSub
	case TokStarEq:
		op = OpMul
	case TokSlashEq:
		op = OpDiv
	default:
		return nil, p.errf(p.cur().Pos, "expected assignment operator, found %v", p.cur().Kind)
	}
	p.next()
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &Assign{Pos: lhsTok.Pos, LHS: lhs, Op: op, RHS: rhs}, nil
}

func (p *Parser) parseRef() (*Ref, error) {
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	r := &Ref{Pos: id.Pos, Name: id.Text}
	for p.cur().Kind == TokLBracket {
		p.next()
		ix, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		r.Indices = append(r.Indices, ix)
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Expression parsing with precedence climbing.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOrOr {
		t := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Pos: t.Pos, Op: BinOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAndAnd {
		t := p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Bin{Pos: t.Pos, Op: BinAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokKind]BinOp{
	TokEq: BinEq, TokNe: BinNe, TokLt: BinLt, TokLe: BinLe, TokGt: BinGt, TokGe: BinGe,
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		t := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Bin{Pos: t.Pos, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokPlus:
			op = BinAdd
		case TokMinus:
			op = BinSub
		default:
			return l, nil
		}
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Bin{Pos: t.Pos, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokStar:
			op = BinMul
		case TokSlash:
			op = BinDiv
		case TokPercent:
			op = BinMod
		default:
			return l, nil
		}
		t := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Pos: t.Pos, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Pos: t.Pos, Op: UnNeg, X: x}, nil
	case TokBang:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Pos: t.Pos, Op: UnNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{Pos: t.Pos, Val: v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{Pos: t.Pos, Val: v}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		// Intrinsic call or reference.
		if arity, ok := Intrinsics[t.Text]; ok && p.toks[p.pos+1].Kind == TokLParen {
			p.next()
			p.next() // (
			call := &Call{Pos: t.Pos, Name: t.Text}
			if p.cur().Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if len(call.Args) != arity {
				return nil, p.errf(t.Pos, "%s takes %d argument(s), got %d", t.Text, arity, len(call.Args))
			}
			return call, nil
		}
		return p.parseRef()
	}
	return nil, p.errf(t.Pos, "unexpected token %v %q in expression", t.Kind, t.Text)
}
