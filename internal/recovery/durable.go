package recovery

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"defuse/internal/wal"
	"defuse/telemetry"
)

// DurableSupervisor runs a supervised epoch loop whose sealed epochs are
// persisted to an on-disk write-ahead checkpoint log, so that recovery
// survives not just a detected corruption but the death of the process
// itself. On startup it scans the log: if a valid record with a matching
// config fingerprint exists, the application state it carries is decoded
// (its payload digest re-verified) and the run resumes from the epoch after
// the one it sealed; otherwise the run starts from scratch. Each record the
// scanner or decoder refuses falls back to the strictly older one — a
// corrupt checkpoint is never resumed silently, matching the in-memory
// policy of ClassCheckpoint at process scale.
type DurableSupervisor struct {
	// Config is the supervised run. StartEpoch and Commit are owned by the
	// durable supervisor and must be left zero/nil.
	Config
	// Path is the checkpoint log file. Required.
	Path string
	// Fingerprint identifies the run configuration (program, parameters,
	// epoch count). A record sealed under a different fingerprint is skipped
	// during resume: state from another workload must not leak in.
	Fingerprint uint64
	// EncodeState renders the application state at an epoch boundary in a
	// stable binary form whose decoder re-verifies an integrity digest.
	// Called after each verified epoch. Required.
	EncodeState func() ([]byte, error)
	// DecodeState installs previously encoded state, failing (typically with
	// an error wrapping a checkpoint-corrupt sentinel) when the bytes cannot
	// be trusted. Called at most once per candidate record during resume.
	// Required.
	DecodeState func([]byte) error
	// MaxBytes bounds the log file; past it the log is compacted to its
	// newest record via an atomic rewrite. Zero keeps every record.
	MaxBytes int64
}

// DurableOutcome extends Outcome with the durability story of the run.
type DurableOutcome struct {
	Outcome
	// Resumed reports that startup installed state from a durable checkpoint.
	Resumed bool
	// ResumeEpoch is the epoch execution started from (0 when not resumed).
	ResumeEpoch int
	// Seals counts checkpoint records fsynced during this run.
	Seals int
	// CorruptRecords counts records refused during resume — CRC-failed
	// frames, digest-failed payloads, or foreign fingerprints.
	CorruptRecords int
	// TornTail reports that recovery discarded a truncated final frame (the
	// previous process died mid-seal).
	TornTail bool
}

// durableRecordHeader is the fixed prefix of every WAL payload: the config
// fingerprint and the epoch index that execution should resume from.
const durableRecordHeader = 16

// Run executes the supervised loop with durable checkpoints. Terminal errors
// are those of Supervise plus I/O failures of the log itself; a corrupt or
// torn log is not terminal — it degrades to an older record or a fresh start
// and is reported in the outcome and via wal.* telemetry.
func (d *DurableSupervisor) Run(ctx context.Context) (DurableOutcome, error) {
	out := DurableOutcome{Outcome: Outcome{Epochs: d.Epochs, FirstDetection: -1}}
	if d.Path == "" || d.EncodeState == nil || d.DecodeState == nil {
		return out, errors.New("recovery: DurableSupervisor needs Path, EncodeState, and DecodeState")
	}
	if d.Config.StartEpoch != 0 || d.Config.Commit != nil {
		return out, errors.New("recovery: DurableSupervisor owns Config.StartEpoch and Config.Commit")
	}

	rspan := d.Config.Tracer.Start(d.Config.Span, "wal.recover")
	log, err := d.resume(&out)
	rspan.EndErr(err)
	if err != nil {
		return out, err
	}
	defer log.Close()

	cfg := d.Config
	cfg.StartEpoch = out.ResumeEpoch
	log.SetTracer(cfg.Tracer, cfg.Span)
	sealBytes := cfg.Metrics.Gauge("defuse_wal_checkpoint_bytes")
	sealLatency := cfg.Metrics.Histogram("defuse_wal_seal_seconds", telemetry.DefBuckets())
	cfg.Commit = func(k int) error {
		start := time.Now()
		sspan := cfg.Tracer.Start(cfg.Span, "wal.seal", telemetry.Int("epoch", k))
		app, err := d.EncodeState()
		if err != nil {
			sspan.EndErr(err)
			return err
		}
		payload := make([]byte, durableRecordHeader+len(app))
		binary.LittleEndian.PutUint64(payload, d.Fingerprint)
		binary.LittleEndian.PutUint64(payload[8:], uint64(k+1))
		copy(payload[durableRecordHeader:], app)
		log.SetTracer(cfg.Tracer, sspan.Context())
		if err := log.Append(payload); err != nil {
			sspan.EndErr(err)
			return err
		}
		sspan.End(telemetry.Int("bytes", len(payload)))
		out.Seals++
		d := time.Since(start)
		telemetry.Emit(cfg.Trace, telemetry.EvWALSeal, map[string]any{
			"epoch": k, "bytes": len(payload), "seconds": d.Seconds(),
		})
		cfg.Metrics.Counter("defuse_wal_seals_total").Inc()
		sealBytes.Set(float64(len(payload)))
		sealLatency.Observe(d.Seconds())
		return nil
	}

	out.Outcome, err = Supervise(ctx, cfg)
	return out, err
}

// resume scans the checkpoint log, installs the newest usable record's state,
// and returns an open append handle positioned after the last frame that
// survives. Unusable records (torn, CRC-failed, digest-failed, foreign
// fingerprint) are reported in out and via telemetry, then discarded — the
// log is truncated (or recreated) so the refused bytes cannot resurface.
func (d *DurableSupervisor) resume(out *DurableOutcome) (*wal.Log, error) {
	opts := wal.Options{MaxBytes: d.MaxBytes}
	scan, err := wal.Recover(d.Path)
	out.TornTail = scan.TornTail
	if out.TornTail {
		telemetry.Emit(d.Trace, telemetry.EvWALTornTail, map[string]any{
			"bytes": scan.TornBytes,
		})
		d.Metrics.Counter("defuse_wal_torn_tails_total").Inc()
	}
	noteCorrupt := func(cause error) {
		out.CorruptRecords++
		telemetry.Emit(d.Trace, telemetry.EvWALCorrupt, map[string]any{
			"error": cause.Error(),
		})
		d.Metrics.Counter("defuse_wal_corrupt_total").Inc()
	}
	if err != nil {
		if errors.Is(err, wal.ErrNoCheckpoint) {
			return wal.Create(d.Path, opts)
		}
		if errors.Is(err, wal.ErrCheckpointCorrupt) {
			// Nothing in the log can be trusted; refuse it loudly and start
			// over — never resume silently wrong state.
			noteCorrupt(err)
			return wal.Create(d.Path, opts)
		}
		return nil, err
	}
	out.CorruptRecords += scan.Corrupt
	for i := 0; i < scan.Corrupt; i++ {
		noteCorrupt(wal.ErrCheckpointCorrupt)
	}

	// Walk newest to oldest: the first record whose fingerprint matches and
	// whose payload decodes (digest verified) wins. Anything refused on the
	// way down is corruption of recovery state — count and discard it.
	usable := -1
	for i := len(scan.Records) - 1; i >= 0; i-- {
		r := scan.Records[i]
		if len(r.Payload) < durableRecordHeader {
			noteCorrupt(fmt.Errorf("record seq %d: short payload (%d bytes)", r.Seq, len(r.Payload)))
			continue
		}
		if fp := binary.LittleEndian.Uint64(r.Payload); fp != d.Fingerprint {
			noteCorrupt(fmt.Errorf("record seq %d: fingerprint %#x, want %#x", r.Seq, fp, d.Fingerprint))
			continue
		}
		epoch := binary.LittleEndian.Uint64(r.Payload[8:])
		if epoch > uint64(d.Epochs) {
			noteCorrupt(fmt.Errorf("record seq %d: resume epoch %d of %d", r.Seq, epoch, d.Epochs))
			continue
		}
		if derr := d.DecodeState(r.Payload[durableRecordHeader:]); derr != nil {
			noteCorrupt(fmt.Errorf("record seq %d: %w", r.Seq, derr))
			continue
		}
		usable = i
		out.Resumed = true
		out.ResumeEpoch = int(epoch)
		break
	}
	if usable < 0 {
		// No record survived its checks: start from scratch on a fresh log.
		return wal.Create(d.Path, opts)
	}
	telemetry.Emit(d.Trace, telemetry.EvWALRecover, map[string]any{
		"epoch": out.ResumeEpoch, "records": usable + 1, "bytes": len(scan.Records[usable].Payload),
	})
	d.Metrics.Counter("defuse_wal_recoveries_total").Inc()
	// Drop any newer-but-refused records before appending: Open truncates
	// only the torn/poisoned remainder past ValidSize, so records the decoder
	// refused must be rewritten away explicitly.
	if usable != len(scan.Records)-1 {
		if err := wal.Rewrite(d.Path, scan.Records[:usable+1]); err != nil {
			return nil, err
		}
		scan, err = wal.Recover(d.Path)
		if err != nil {
			return nil, err
		}
	}
	return wal.Open(scan, opts)
}
