package interp

import (
	"fmt"
	"sync"

	"defuse/internal/checksum"
	"defuse/internal/lang"
	"defuse/telemetry"
)

// This file is the interpreter's parallel executor. The def/use checksums are
// commutative folds, so row-blocks of an affine kernel's outermost loop can
// run on a worker pool — each worker folding into a private checksum.Pair
// shard and a private view of the shared memory — and the shards merged into
// the root pair before the epilogue's assert_checksums runs. The verdict is
// identical to the sequential run (see rt/shard.go for the argument); only
// kernels whose outermost iterations touch disjoint stored words (dsyrk,
// strsm row/column blocks) may be run this way, which is the caller's
// contract to uphold, mirroring the paper's Section 2.2 assumption that
// control flow and scheduling are protected by other means.

// ParallelPlan partitions a program's parallel loop into contiguous
// iteration blocks, one per worker. The anchor is the top-level for loop
// with the largest statement tree — the kernel nest — not the first one,
// because instrumented programs open with flat checksum-registration loops
// that must stay serial (they fold every input word, in any order, but
// belong to the prologue).
type ParallelPlan struct {
	m         *Machine
	pre, post []lang.Stmt
	loop      *lang.For
	workers   int
}

// ParallelResult reports how a parallel run distributed its work, in both
// wall-free deterministic terms (per-worker dynamic op counts) and the serial
// remainder (prologue + epilogue ops run on the root machine).
type ParallelResult struct {
	// Workers is the number of worker shards actually used (the requested
	// count clamped to the iteration count).
	Workers int
	// SerialCounts are the dynamic ops of the serial prologue and epilogue.
	SerialCounts OpCounts
	// WorkerCounts are the dynamic ops each worker performed on its block.
	WorkerCounts []OpCounts
}

// PlanParallel builds a parallel plan with the given worker count over the
// machine's program. The caller asserts that distinct iterations of the
// program's deepest top-level loop write disjoint memory words; a program
// with no top-level loop degenerates to a serial run.
func (m *Machine) PlanParallel(workers int) (*ParallelPlan, error) {
	if workers < 1 {
		return nil, fmt.Errorf("interp: PlanParallel needs workers >= 1, got %d", workers)
	}
	p := &ParallelPlan{m: m, workers: workers}
	best, bestSize := -1, 0
	for i, s := range m.prog.Body {
		if f, ok := s.(*lang.For); ok {
			if size := deepStmtCount(f.Body); best < 0 || size > bestSize {
				best, bestSize = i, size
			}
		}
	}
	if best < 0 {
		p.pre = m.prog.Body
		p.workers = 1
		return p, nil
	}
	p.pre = m.prog.Body[:best]
	p.loop = m.prog.Body[best].(*lang.For)
	p.post = m.prog.Body[best+1:]
	return p, nil
}

// deepStmtCount sizes a statement tree, recursing into loop and branch
// bodies, so the plan can tell the kernel nest from flat registration loops.
func deepStmtCount(ss []lang.Stmt) int {
	n := 0
	for _, s := range ss {
		n++
		switch x := s.(type) {
		case *lang.For:
			n += deepStmtCount(x.Body)
		case *lang.While:
			n += deepStmtCount(x.Body)
		case *lang.If:
			n += deepStmtCount(x.Then) + deepStmtCount(x.Else)
		}
	}
	return n
}

// Workers returns the planned worker count.
func (p *ParallelPlan) Workers() int { return p.workers }

// fork returns a worker machine: program, parameters, and variable layout
// shared with m (all read-only during execution), a SharedView of the
// simulated memory with private access counters, a private checksum shard,
// and private iterator bindings and op counts. Workers inherit no trace
// sink, metrics registry, or step hook — fault injection and telemetry stay
// on the root machine, whose merge events summarize each worker.
func (m *Machine) fork() *Machine {
	return &Machine{
		prog:     m.prog,
		mem:      m.mem.SharedView(),
		params:   m.params,
		vars:     m.vars,
		iters:    map[string]int64{},
		pair:     checksum.NewPair(m.pair.Kind()),
		MaxSteps: m.MaxSteps,
	}
}

// Run executes the program with the planned worker pool: the prologue runs
// serially on the root machine, the parallel loop's iteration range is cut
// into one contiguous block per worker (each folding checksums into a
// private shard against a private memory view), the shards merge into the
// root pair in worker order, and the epilogue — including its
// assert_checksums — runs serially on the merged state. A checksum detection
// therefore surfaces exactly as in the sequential run: as a *DetectionError
// from the epilogue's assertion. The step budget applies per machine, so a
// parallel run may execute up to workers× the serial budget.
func (p *ParallelPlan) Run() (*ParallelResult, error) {
	m := p.m
	max := m.stepBudget()
	countsBefore := m.Counts
	res := &ParallelResult{Workers: 1}
	if err := m.execStmts(p.pre, max); err != nil {
		m.publishMetrics()
		return nil, err
	}
	if p.loop != nil {
		lo, err := m.evalInt(p.loop.Lo)
		if err != nil {
			m.publishMetrics()
			return nil, err
		}
		hi, err := m.evalInt(p.loop.Hi)
		if err != nil {
			m.publishMetrics()
			return nil, err
		}
		count := hi - lo + 1
		if count < 0 {
			count = 0
		}
		workers := int64(p.workers)
		if workers > count {
			workers = count
		}
		if workers < 1 {
			workers = 1
		}
		res.Workers = int(workers)
		res.WorkerCounts = make([]OpCounts, workers)
		forks := make([]*Machine, workers)
		errs := make([]error, workers)
		chunk := (count + workers - 1) / workers
		var wg sync.WaitGroup
		for w := int64(0); w < workers; w++ {
			wm := m.fork()
			forks[w] = wm
			start := lo + w*chunk
			end := start + chunk - 1
			if end > hi {
				end = hi
			}
			wg.Add(1)
			go func(wm *Machine, w, start, end int64) {
				defer wg.Done()
				for i := start; i <= end; i++ {
					wm.iters[p.loop.Iter] = i
					if err := wm.execStmts(p.loop.Body, max); err != nil {
						errs[w] = err
						return
					}
				}
			}(wm, w, start, end)
		}
		wg.Wait()
		// Merge every shard (errors included, so accounting stays exact);
		// worker order keeps the telemetry deterministic — commutativity
		// makes the merged accumulators order-independent anyway.
		for w, wm := range forks {
			m.pair.Merge(wm.pair)
			m.Counts.add(wm.Counts)
			m.mem.AbsorbCounters(wm.mem)
			res.WorkerCounts[w] = wm.Counts
			if m.trace != nil {
				telemetry.Emit(m.trace, telemetry.EvShardMerge, map[string]any{
					"worker": w, "ops": wm.Counts.Total(), "live": len(forks) - w - 1,
				})
			}
		}
		if m.trace != nil {
			telemetry.Emit(m.trace, telemetry.EvShardDrain, map[string]any{"shards": len(forks)})
		}
		for _, err := range errs {
			if err != nil {
				m.publishMetrics()
				return nil, err
			}
		}
	}
	err := m.execStmts(p.post, max)
	res.SerialCounts = m.Counts.sub(countsBefore)
	for _, wc := range res.WorkerCounts {
		res.SerialCounts = res.SerialCounts.sub(wc)
	}
	m.publishMetrics()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// add accumulates o into c field-by-field.
func (c *OpCounts) add(o OpCounts) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Arith += o.Arith
	c.Compare += o.Compare
	c.CsOps += o.CsOps
	c.CsLoads += o.CsLoads
	c.CsArith += o.CsArith
	c.Branches += o.Branches
	c.Stmts += o.Stmts
}

// sub returns c - o field-by-field.
func (c OpCounts) sub(o OpCounts) OpCounts {
	return OpCounts{
		Loads:    c.Loads - o.Loads,
		Stores:   c.Stores - o.Stores,
		Arith:    c.Arith - o.Arith,
		Compare:  c.Compare - o.Compare,
		CsOps:    c.CsOps - o.CsOps,
		CsLoads:  c.CsLoads - o.CsLoads,
		CsArith:  c.CsArith - o.CsArith,
		Branches: c.Branches - o.Branches,
		Stmts:    c.Stmts - o.Stmts,
	}
}
