// Package defuse is a compiler-assisted detector of transient memory errors,
// reproducing "Compiler-Assisted Detection of Transient Memory Errors"
// (Tavarageri, Krishnamoorthy, Sadayappan — PLDI 2014).
//
// The library instruments programs with def-use checksums: every defined
// value contributes to a global def-checksum scaled by its number of uses,
// every consumed value contributes to a use-checksum, and a final verifier
// compares the two — a mismatch means a value was corrupted in the memory
// subsystem between a write and a read.
//
// Two instrumentation front ends are provided:
//
//   - Compile instruments programs written in the package's small loop
//     language (internal/lang), using polyhedral analysis to derive exact
//     compile-time use counts for affine references (Algorithm 1), index-set
//     splitting to remove per-iteration guards (Algorithm 2), dynamic shadow
//     counters with auxiliary checksums for irregular references (Algorithm
//     3, Section 4.1), and hoisted inspectors for iterative codes (Section
//     4.2). Instrumented programs execute on a simulated faulty memory via
//     Execute, so detection can be demonstrated end to end.
//
//   - InstrumentGo rewrites real Go source via go/ast, inserting calls to
//     the public defuse/rt runtime (the general dynamic scheme).
//
// The fault-coverage experiment of the paper's Table 1 is exposed through
// FaultCoverage, and the Figure 10/11 overhead reproduction through the
// internal/bench package (cmd/overhead, cmd/faultcov).
package defuse

import (
	"fmt"
	"strings"

	"defuse/internal/bench"
	"defuse/internal/faults"
	"defuse/internal/goinstr"
	"defuse/internal/instrument"
	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/telemetry"
)

// Options mirrors the instrumenter's optimization switches.
type Options = instrument.Options

// CompileResult is an instrumented program plus the instrumentation report.
type CompileResult struct {
	// Source is the instrumented program text (parseable by Compile's input
	// language).
	Source string
	// Prog is the instrumented AST, runnable via Execute.
	Prog *lang.Program
	// Report records the protection plan chosen per variable and the
	// optimizations applied.
	Report instrument.Report
}

// Compile parses a program in the defuse loop language and instruments it
// with error-detection checksums. When opt carries telemetry hooks
// (Options.Trace / Options.Metrics), every pipeline phase — parse included —
// is timed and streamed through them.
func Compile(src string, opt Options) (*CompileResult, error) {
	var prog *lang.Program
	var err error
	parseDur := telemetry.TimePhase(opt.Trace, opt.Metrics, "compile", "parse",
		func() { prog, err = lang.Parse(src) })
	if err != nil {
		return nil, err
	}
	res, err := instrument.Instrument(prog, opt)
	if err != nil {
		return nil, err
	}
	res.Report.Phases = append(
		[]instrument.PhaseTiming{{Phase: "parse", Duration: parseDur}},
		res.Report.Phases...)
	return &CompileResult{
		Source: lang.Print(res.Prog),
		Prog:   res.Prog,
		Report: res.Report,
	}, nil
}

// Machine is an execution of a (possibly instrumented) program against the
// simulated memory subsystem.
type Machine = interp.Machine

// NewMachine prepares a program for execution with the given integer
// parameter values. Initialize arrays with the machine's SetFloat/SetInt/
// Fill methods, then call Run; instrumented programs return a
// *interp.DetectionError when a memory error is detected.
func NewMachine(prog *lang.Program, params map[string]int64) (*Machine, error) {
	return interp.New(prog, params)
}

// Parse parses a program in the defuse loop language without instrumenting.
func Parse(src string) (*lang.Program, error) { return lang.Parse(src) }

// PrintProgram renders a program back to source text.
func PrintProgram(p *lang.Program) string { return lang.Print(p) }

// GoOptions configures Go source instrumentation.
type GoOptions = goinstr.Options

// GoReport describes the Go instrumentation outcome.
type GoReport = goinstr.Report

// InstrumentGo rewrites Go source so tracked function-level variables are
// protected by the def-use checksum scheme (calls into defuse/rt).
func InstrumentGo(filename, src string, opt GoOptions) (string, *GoReport, error) {
	return goinstr.Instrument(filename, src, opt)
}

// CoverageConfig parameterizes a fault-coverage experiment (Table 1).
type CoverageConfig = faults.CoverageConfig

// CoverageResult reports a fault-coverage experiment outcome.
type CoverageResult = faults.CoverageResult

// FaultCoverage runs one cell of the paper's Table 1: initialize words 64-bit
// values, flip bits, and count undetected errors under one or two checksums.
// With cfg.Epochs > 0 the cell runs the epoch-scoped experiment, measuring
// detection latency and (with cfg.Recover) rollback-recovery success.
// It returns an error for invalid configurations.
func FaultCoverage(cfg CoverageConfig) (CoverageResult, error) {
	return faults.RunCoverage(cfg)
}

// Benchmarks returns the paper's Table 2 benchmark suite.
func Benchmarks() []*bench.Benchmark { return bench.Suite() }

// Benchmark returns one Table 2 benchmark by name.
func Benchmark(name string) (*bench.Benchmark, error) { return bench.ByName(name) }

// Version identifies the library.
const Version = "1.0.0"

// Describe returns a short human-readable summary of a compile result: the
// per-variable protection plans, the optimization counts (inspectors
// hoisted, split segments, checksum statements inserted), and the wall time
// of each compile phase.
func Describe(r *CompileResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "instrumented program (%d variables tracked):\n", len(r.Report.Plans))
	b.WriteString(r.Report.String())
	counts := r.Report.PlanCounts()
	if len(counts) > 0 {
		var parts []string
		for _, p := range []instrument.Plan{instrument.PlanStatic, instrument.PlanDynamic,
			instrument.PlanInspector, instrument.PlanInvariant, instrument.PlanControl} {
			if n := counts[p]; n > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", n, p))
			}
		}
		fmt.Fprintf(&b, "plan mix: %s\n", strings.Join(parts, ", "))
	}
	var total float64
	for _, pt := range r.Report.Phases {
		total += pt.Duration.Seconds()
	}
	if len(r.Report.Phases) > 0 {
		fmt.Fprintf(&b, "total compile time: %.3fms over %d phases\n",
			total*1e3, len(r.Report.Phases))
	}
	return b.String()
}
