package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"defuse/telemetry"
)

// This file defines the machine-readable overhead record written by
// cmd/overhead -json (BENCH_overhead.json): the repo's perf-trajectory
// format, so Figure 10/11 overhead claims can be regression-tracked across
// PRs instead of living only in terminal scrollback.

// OverheadSchema identifies the BENCH_overhead.json format version. v2 adds
// the optional quantiles block (epoch-verify latency and detection latency
// distributions); every v1 field is carried forward unchanged.
const OverheadSchema = "defuse/overhead/v2"

// OverheadRow is one benchmark's measurements across the three variants.
type OverheadRow struct {
	Bench           string  `json:"bench"`
	OriginalSeconds float64 `json:"original_seconds"`
	ResilientTime   float64 `json:"resilient_time"`
	OptimizedTime   float64 `json:"optimized_time"`
	ResilientOps    float64 `json:"resilient_ops"`
	OptimizedOps    float64 `json:"optimized_ops"`
	HWEstimate      float64 `json:"hw_estimate"`
}

// OverheadGeomean summarizes the suite the way the paper does.
type OverheadGeomean struct {
	ResilientOps float64 `json:"resilient_ops"`
	OptimizedOps float64 `json:"optimized_ops"`
	HWEstimate   float64 `json:"hw_estimate"`
}

// OverheadQuantiles carries the latency distributions behind the headline
// geomeans: how long a boundary verification takes in wall-clock terms, and
// how many epochs a detection lags its injection, both summarized as
// histogram-derived p50/p99/p999. New in defuse/overhead/v2.
type OverheadQuantiles struct {
	EpochVerifySeconds     *telemetry.QuantileSummary `json:"epoch_verify_seconds,omitempty"`
	DetectionLatencyEpochs *telemetry.QuantileSummary `json:"detection_latency_epochs,omitempty"`
}

// OverheadReport is the full BENCH_overhead.json document.
type OverheadReport struct {
	Schema      string          `json:"schema"`
	GeneratedAt time.Time       `json:"generated_at"`
	Scale       float64         `json:"scale"`
	Rows        []OverheadRow   `json:"rows"`
	Geomean     OverheadGeomean `json:"geomean"`
	// Scaling holds the parallel executor's scaling curve (one row per
	// benchmark × worker count), present when -parallel was requested.
	Scaling []ScalingRow `json:"scaling,omitempty"`
	// Quantiles is present when the run recorded the relevant histograms
	// (cmd/overhead -json runs a small supervised fault probe to fill it).
	Quantiles *OverheadQuantiles `json:"quantiles,omitempty"`
}

// AttachQuantiles pulls the epoch-verify and detection-latency families out
// of a metrics snapshot and records their quantile summaries on the report.
// Families that recorded no observations are left out rather than reported
// as zeros.
func (r *OverheadReport) AttachQuantiles(snap telemetry.Snapshot) {
	q := &OverheadQuantiles{}
	if s, ok := snap.FamilyQuantiles("defuse_epoch_verify_seconds"); ok {
		q.EpochVerifySeconds = &s
	}
	if s, ok := snap.FamilyQuantiles("defuse_detection_latency_epochs"); ok {
		q.DetectionLatencyEpochs = &s
	}
	if q.EpochVerifySeconds != nil || q.DetectionLatencyEpochs != nil {
		r.Quantiles = q
	}
}

// BuildOverheadReport merges Figure 10 and Figure 11 rows into one report.
// The row slices must be parallel (as Figure10With returns them).
func BuildOverheadReport(rows10 []Figure10Row, rows11 []Figure11Row, scale float64) (OverheadReport, error) {
	if len(rows10) != len(rows11) {
		return OverheadReport{}, fmt.Errorf("bench: %d figure-10 rows vs %d figure-11 rows", len(rows10), len(rows11))
	}
	rep := OverheadReport{
		Schema:      OverheadSchema,
		GeneratedAt: time.Now().UTC(),
		Scale:       scale,
	}
	hwSum, hwN := 0.0, 0
	for i, r := range rows10 {
		if rows11[i].Bench != r.Bench {
			return OverheadReport{}, fmt.Errorf("bench: row %d mismatch: %s vs %s", i, r.Bench, rows11[i].Bench)
		}
		rep.Rows = append(rep.Rows, OverheadRow{
			Bench:           r.Bench,
			OriginalSeconds: r.OriginalSeconds,
			ResilientTime:   r.ResilientTime,
			OptimizedTime:   r.OptimizedTime,
			ResilientOps:    r.ResilientOps,
			OptimizedOps:    r.OptimizedOps,
			HWEstimate:      rows11[i].HWEstimate,
		})
		hwSum += math.Log(rows11[i].HWEstimate)
		hwN++
	}
	rg, og := GeoMeans(rows10)
	rep.Geomean = OverheadGeomean{ResilientOps: rg, OptimizedOps: og}
	if hwN > 0 {
		rep.Geomean.HWEstimate = math.Exp(hwSum / float64(hwN))
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r OverheadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseOverheadReport reads a report back, validating its schema tag — the
// consumer side of the perf trajectory.
func ParseOverheadReport(r io.Reader) (OverheadReport, error) {
	var rep OverheadReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: parsing overhead report: %w", err)
	}
	if rep.Schema != OverheadSchema {
		return rep, fmt.Errorf("bench: unexpected schema %q (want %q)", rep.Schema, OverheadSchema)
	}
	if len(rep.Rows) == 0 {
		return rep, fmt.Errorf("bench: overhead report has no rows")
	}
	return rep, nil
}
