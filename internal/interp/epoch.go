package interp

import (
	"context"
	"fmt"

	"defuse/internal/checksum"
	"defuse/internal/lang"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// This file wires epoch-scoped execution through the interpreter. The
// instrumenter places the paper's verification at a post-dominator of all
// defs and uses; an epoch plan refines that placement to iteration blocks of
// the outermost loop, so a supervisor can verify, checkpoint, and — on a
// detected corruption — roll back and re-execute one block instead of
// discarding the whole run.

// EpochPlan partitions a program's outermost top-level loop into n
// contiguous iteration blocks (epochs). Statements before the loop belong to
// epoch 0 and statements after it to the last epoch, so running epochs
// 0..n-1 in order is equivalent to Run.
type EpochPlan struct {
	m         *Machine
	pre, post []lang.Stmt
	loop      *lang.For
	n         int

	// Loop bounds are evaluated when epoch 0 executes (they may depend on
	// scalars the prologue computes).
	lo, hi     int64
	haveBounds bool
}

// PlanEpochs builds an n-epoch plan over the machine's program. The epoch
// anchor is the first top-level for loop — the instrumenter's outermost
// loop, whose iteration blocks post-dominate the defs and uses of the values
// produced within them. A program with no top-level loop collapses to a
// single epoch.
func (m *Machine) PlanEpochs(n int) (*EpochPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("interp: PlanEpochs needs n >= 1, got %d", n)
	}
	p := &EpochPlan{m: m, n: n}
	for i, s := range m.prog.Body {
		if f, ok := s.(*lang.For); ok {
			p.pre = m.prog.Body[:i]
			p.loop = f
			p.post = m.prog.Body[i+1:]
			break
		}
	}
	if p.loop == nil {
		p.pre = m.prog.Body
		p.n = 1
	}
	return p, nil
}

// Epochs returns the number of epochs in the plan.
func (p *EpochPlan) Epochs() int { return p.n }

// Reset clears the plan's cached loop bounds so a pooled machine's plan can
// be reused for a fresh request: bounds may depend on scalars the prologue
// computes, so they must be re-evaluated when epoch 0 next runs. Pair with
// Machine.Reset.
func (p *EpochPlan) Reset() {
	p.lo, p.hi, p.haveBounds = 0, 0, false
}

// RunEpoch executes epoch k: the prologue (k == 0), the k-th block of
// outermost-loop iterations, and the epilogue (k == n-1). Epochs must be
// started in order the first time, but any epoch may be re-executed after
// the machine's state is restored to that epoch's entry checkpoint.
func (p *EpochPlan) RunEpoch(k int) error {
	if k < 0 || k >= p.n {
		return fmt.Errorf("interp: epoch %d out of range [0,%d)", k, p.n)
	}
	max := p.m.stepBudget()
	if k == 0 {
		if err := p.m.execStmts(p.pre, max); err != nil {
			return err
		}
		if p.loop != nil {
			lo, err := p.m.evalInt(p.loop.Lo)
			if err != nil {
				return err
			}
			hi, err := p.m.evalInt(p.loop.Hi)
			if err != nil {
				return err
			}
			p.lo, p.hi, p.haveBounds = lo, hi, true
		}
	}
	if p.loop != nil {
		if !p.haveBounds {
			return fmt.Errorf("interp: epoch %d run before epoch 0 evaluated loop bounds", k)
		}
		count := p.hi - p.lo + 1
		if count < 0 {
			count = 0
		}
		chunk := (count + int64(p.n) - 1) / int64(p.n)
		start := p.lo + int64(k)*chunk
		end := start + chunk - 1
		if end > p.hi {
			end = p.hi
		}
		for i := start; i <= end; i++ {
			p.m.iters[p.loop.Iter] = i
			if err := p.m.execStmts(p.loop.Body, max); err != nil {
				delete(p.m.iters, p.loop.Iter)
				return err
			}
		}
		delete(p.m.iters, p.loop.Iter)
	}
	if k == p.n-1 {
		return p.m.execStmts(p.post, max)
	}
	return nil
}

// epochSnap is the supervisor checkpoint of everything an epoch mutates:
// the simulated memory (as a digest-sealed snapshot), the checksum
// accumulators, and the plan's cached loop bounds (so a full restart
// re-evaluates them in epoch 0).
type epochSnap struct {
	mem        memsim.Snapshot
	pair       checksum.Pair
	lo, hi     int64
	haveBounds bool
}

// Supervise runs the plan under a checkpoint/rollback recovery supervisor,
// verifying the def/use checksums at every epoch boundary. The verification
// is sound when the instrumentation is epoch-balanced — every value defined
// in an iteration block has its checksum contributions completed by the
// block's end, which is exactly the paper's post-dominator condition applied
// per block. The machine's trace sink and metrics registry, if configured,
// receive the supervisor's epoch.verify / recovery.* telemetry.
func (p *EpochPlan) Supervise(ctx context.Context, pol recovery.Policy) (recovery.Outcome, error) {
	defer p.m.publishMetrics()
	run := p.m.tracer.Start(telemetry.SpanContext{}, "run", telemetry.Int("epochs", p.n))
	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs: p.n,
		Run:    p.RunEpoch,
		Verify: func(int) error {
			// Scrub first: a diverged accumulator copy means the def/use
			// comparison below cannot be trusted, and the supervisor must
			// treat the failure as a detector fault, not a data fault.
			if err := p.m.pair.Scrub(); err != nil {
				return err
			}
			err := p.m.pair.Verify()
			p.m.emitVerify(err)
			return err
		},
		Checkpoint: func() any {
			return epochSnap{
				mem:  p.m.mem.Snapshot(),
				pair: *p.m.pair,
				lo:   p.lo, hi: p.hi, haveBounds: p.haveBounds,
			}
		},
		Restore: func(snap any) error {
			s := snap.(epochSnap)
			if err := p.m.mem.Restore(s.mem); err != nil {
				return err
			}
			*p.m.pair = s.pair
			p.lo, p.hi, p.haveBounds = s.lo, s.hi, s.haveBounds
			return nil
		},
		Policy:  pol,
		Trace:   p.m.trace,
		Metrics: p.m.metrics,
		Tracer:  p.m.tracer,
		Span:    run.Context(),
	})
	run.End(telemetry.Bool("detected", out.Detected), telemetry.Bool("tainted", out.Tainted))
	return out, err
}
