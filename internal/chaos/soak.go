package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"time"

	"defuse/internal/bench"
	"defuse/internal/faults"
	"defuse/internal/server"
)

// Config drives one soak.
type Config struct {
	// Exe is the child executable; it must route ChildEnv to SoakChildMain
	// before doing anything else (cmd/defused does; so does the chaos test
	// binary via its TestMain). Empty means the current executable. Args are
	// extra arguments passed to every child invocation.
	Exe  string
	Args []string
	// Dir is the scratch directory (journal, port files); empty means a
	// fresh temporary directory, removed when the soak finishes.
	Dir string
	// Seed derives the disturbance schedule; Duration bounds the soak.
	Seed     uint64
	Duration time.Duration
	// Workload shape. WorkSeed is the server's data seed (the audit
	// recomputes reference digests from it); FaultRate/FaultSeed drive the
	// live sampler on both sides.
	Words     int
	Epochs    int
	WorkSeed  uint64
	Kernel    string
	FaultRate float64
	FaultSeed uint64
	// Journal rotation: small segments make a short soak cross many segment
	// boundaries.
	SegmentBytes int64
	MaxSegments  int
	// Admission shape. Small bounds make the burst events bite.
	MaxInFlight int
	QueueDepth  int
	// Logf, when set, narrates the soak (the -soak CLI passes log.Printf).
	Logf func(format string, args ...any)
}

func (cfg *Config) defaults() {
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Words <= 0 {
		cfg.Words = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.WorkSeed == 0 {
		cfg.WorkSeed = cfg.Seed*2 + 1
	}
	if cfg.FaultRate <= 0 {
		cfg.FaultRate = 0.25
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = cfg.Seed + 11
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4096
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 3
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4
	}
}

// Result is the audited outcome of one soak.
type Result struct {
	Row bench.SoakRow
	// Failures lists audit violations (bounded), for the error message.
	Failures []string
}

// Gate enforces the soak bar: the schedule's disturbance minima were all
// delivered, and every zero-tolerance column is zero.
func (r *Result) Gate() error {
	row := r.Row
	switch {
	case row.SilentCorruptions > 0:
		return fmt.Errorf("chaos: %d silent corruptions accepted, first: %s", row.SilentCorruptions, r.first())
	case row.UndetectedFaults > 0:
		return fmt.Errorf("chaos: %d injected faults undetected, first: %s", row.UndetectedFaults, r.first())
	case row.ResumeMismatches > 0:
		return fmt.Errorf("chaos: %d restart resumes deviated from the surviving journal, first: %s", row.ResumeMismatches, r.first())
	case row.AuditFailures > 0:
		return fmt.Errorf("chaos: %d audit failures, first: %s", row.AuditFailures, r.first())
	case row.Kills < 2:
		return fmt.Errorf("chaos: only %d kills delivered, want >= 2", row.Kills)
	case row.Pauses < 1:
		return fmt.Errorf("chaos: no SIGSTOP pause delivered")
	case row.BitFlips < 1:
		return fmt.Errorf("chaos: no disk bit flip applied between restarts")
	case row.TornWrites < 1:
		return fmt.Errorf("chaos: no torn write applied between restarts")
	case row.Bursts < 1:
		return fmt.Errorf("chaos: no overload burst delivered")
	case row.WriteFaults < 1:
		return fmt.Errorf("chaos: no injected WAL write fault observed")
	case row.Requests == 0:
		return fmt.Errorf("chaos: no requests completed")
	case row.Injected == 0:
		return fmt.Errorf("chaos: no live faults injected (rate %v)", 0)
	}
	return nil
}

func (r *Result) first() string {
	if len(r.Failures) == 0 {
		return "(no detail recorded)"
	}
	return r.Failures[0]
}

// soakRun is the orchestrator's working state.
type soakRun struct {
	cfg         Config
	spec        ChildSpec
	sched       Schedule
	ld          *loader
	row         bench.SoakRow
	incarnation int
	degraded    int64 // per-incarnation DegradedN, accumulated before kills

	// The destroyed ledger: records the orchestrator's own disk mutations
	// deliberately destroyed. Acknowledged requests are fsync-durable, so a
	// torn tail or bit flip erases real history — the reconciliation rebases
	// the client ledger by exactly this much, and nothing else.
	destroyedTotal    int
	destroyedXor      uint64
	destroyedInjected int

	// failures holds the orchestrator side's violation detail (bounded; the
	// row's columns are what gate — each site increments its own column).
	failures []string
}

func (s *soakRun) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Soak runs the full orchestrated soak and returns the audited result. The
// returned error covers orchestration breakdowns (child would not start,
// scratch dir unusable); audit violations land in the Result and its Gate.
func Soak(ctx context.Context, cfg Config) (*Result, error) {
	cfg.defaults()
	exe := cfg.Exe
	if exe == "" {
		var err error
		if exe, err = os.Executable(); err != nil {
			return nil, err
		}
		cfg.Exe = exe
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "defuse-soak-"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	s := &soakRun{
		cfg:   cfg,
		sched: BuildSchedule(cfg.Seed, cfg.Duration),
		spec: ChildSpec{
			WAL:        filepath.Join(dir, "soak.wal"),
			PortFile:   filepath.Join(dir, "port"),
			ResumeFile: filepath.Join(dir, "resume.json"),
			Words:      cfg.Words, Epochs: cfg.Epochs, Seed: cfg.WorkSeed,
			Kernel:    cfg.Kernel,
			FaultRate: cfg.FaultRate, FaultSeed: cfg.FaultSeed,
			MaxInFlight: cfg.MaxInFlight, QueueDepth: cfg.QueueDepth,
			DegradeAfterSheds: 2 * cfg.QueueDepth, RecoverAfterOK: cfg.QueueDepth,
			SegmentBytes: cfg.SegmentBytes, MaxSegments: cfg.MaxSegments,
		},
	}
	s.row.Seed = cfg.Seed

	// The audit side recomputes the schedule from the same seed; the
	// orchestrator must be driving exactly the plan the auditor expects.
	if recomputed := BuildSchedule(cfg.Seed, cfg.Duration); !reflect.DeepEqual(recomputed, s.sched) {
		return nil, fmt.Errorf("chaos: schedule recomputation diverged (nondeterministic BuildSchedule)")
	}
	s.logf("chaos: schedule seed=%d duration=%s events=%d (kills=%d) wal-fault specs=%v",
		cfg.Seed, cfg.Duration, len(s.sched.Events), s.sched.Kills(), s.sched.WALFaults)

	result, err := s.run(ctx)
	if result != nil {
		result.Row.DurationSeconds = cfg.Duration.Seconds()
	}
	return result, err
}

func (s *soakRun) walFaults() string {
	if s.incarnation < len(s.sched.WALFaults) {
		return s.sched.WALFaults[s.incarnation]
	}
	return ""
}

// startChild launches one incarnation, waits for readiness, and audits its
// resume report against the orchestrator's own pre-start scan of the disk.
func (s *soakRun) startChild(ctx context.Context, preStats server.JournalStats, havePre, mutated bool) (*exec.Cmd, error) {
	_ = os.Remove(s.spec.PortFile)
	_ = os.Remove(s.spec.ResumeFile)
	spec := s.spec
	spec.WALFaults = s.walFaults()
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, s.cfg.Exe, s.cfg.Args...)
	cmd.Env = append(os.Environ(), ChildEnv+"="+string(raw))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(15 * time.Second)
	var addr []byte
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if addr, err = os.ReadFile(s.spec.PortFile); err == nil && len(addr) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(addr) == 0 {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("chaos: child incarnation %d never became ready", s.incarnation)
	}
	target := "http://" + string(addr)
	if s.ld == nil {
		s.ld = newLoader(target, s.cfg)
	} else {
		s.ld.retarget(target)
	}

	// The resume audit: the child's own pre-open verification must agree
	// with the orchestrator's independent scan of the same bytes, and the
	// server's resume must account for exactly what the verification saw.
	repRaw, err := os.ReadFile(s.spec.ResumeFile)
	if err != nil {
		return nil, fmt.Errorf("chaos: child resume report: %w", err)
	}
	var rep ResumeReport
	if err := json.Unmarshal(repRaw, &rep); err != nil {
		return nil, fmt.Errorf("chaos: child resume report: %w", err)
	}
	if havePre {
		if rep.Stats != preStats {
			s.row.ResumeMismatches++
			s.fail("incarnation %d: child verification %+v deviates from orchestrator scan %+v",
				s.incarnation, rep.Stats, preStats)
		}
		if rep.Info.Records != rep.Stats.Live || rep.Info.Compacted != rep.Stats.Compacted ||
			rep.Info.TornTail != rep.Stats.TornTail || rep.Info.Corrupt != rep.Stats.Corrupt {
			s.row.ResumeMismatches++
			s.fail("incarnation %d: server resume %+v does not match disk %+v", s.incarnation, rep.Info, rep.Stats)
		}
		if mutated && !rep.Stats.TornTail && !rep.Stats.Corrupt && rep.Stats.Dropped == 0 {
			// The disk was deliberately damaged and the restart declared
			// nothing: corruption accepted silently.
			s.row.SilentCorruptions++
			s.fail("incarnation %d: mutated journal resumed with no damage declared (%+v)", s.incarnation, rep.Stats)
		}
	}
	s.row.Restarts++
	return cmd, nil
}

func (s *soakRun) fail(format string, args ...any) {
	if len(s.failures) < 20 {
		s.failures = append(s.failures, fmt.Sprintf(format, args...))
	}
	s.logf("chaos: AUDIT: "+format, args...)
}

// harvest pulls the child's live counters right before it goes away, keeping
// the per-incarnation degraded tally that a SIGKILL would otherwise destroy.
func (s *soakRun) harvest(ctx context.Context) {
	if st, err := s.ld.stats(ctx); err == nil {
		s.degraded += st.DegradedN
	}
}

// waitStopped polls /proc until the process reports the stopped state (T).
// The state is the third field of /proc/PID/stat, after the parenthesised
// command name (which may itself contain spaces).
func waitStopped(pid int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	statPath := fmt.Sprintf("/proc/%d/stat", pid)
	for time.Now().Before(deadline) {
		raw, err := os.ReadFile(statPath)
		if err == nil {
			if i := bytes.LastIndexByte(raw, ')'); i >= 0 && i+2 < len(raw) {
				if raw[i+2] == 'T' {
					return true
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// checkDisk audits the rotation bound: the journal's on-disk footprint must
// stay within the segment budget no matter how long the soak runs.
func (s *soakRun) checkDisk(stats server.JournalStats) {
	bound := int64(s.cfg.MaxSegments+2) * (s.cfg.SegmentBytes + 1024)
	if stats.DiskBytes > bound {
		s.row.AuditFailures++
		s.fail("journal disk %d bytes exceeds rotation bound %d (%d segments)",
			stats.DiskBytes, bound, stats.Segments)
	}
}

func (s *soakRun) run(ctx context.Context) (*Result, error) {
	start := time.Now()
	cmd, err := s.startChild(ctx, server.JournalStats{}, false, false)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	roundN := 4 * s.cfg.MaxInFlight
	pendingFlip, pendingTear := false, false
	for _, ev := range s.sched.Events {
		if ctx.Err() != nil {
			break
		}
		// Load rounds run until the event's firing time. Rounds are the
		// synchronization points: each returns with nothing in flight, so
		// kills never race an unacknowledged append.
		for time.Since(start) < ev.At && ctx.Err() == nil {
			s.ld.round(ctx, roundN, s.cfg.MaxInFlight)
		}
		switch ev.Kind {
		case KindKill:
			s.logf("chaos: t=%s SIGKILL (flip=%v tear=%v)", time.Since(start).Round(time.Millisecond), ev.Flip, ev.Tear)
			s.harvest(ctx)
			if err := cmd.Process.Kill(); err != nil {
				return nil, fmt.Errorf("chaos: SIGKILL: %w", err)
			}
			_ = cmd.Wait()
			cmd = nil
			s.row.Kills++

			// Durability audit: nothing was in flight at the kill (load runs
			// in rounds), and every acknowledged append was fsynced, so the
			// corpse's journal must account for exactly the client ledger —
			// minus what earlier mutations already destroyed.
			before, berr := server.VerifyJournal(s.spec.WAL)
			if berr != nil {
				s.row.AuditFailures++
				s.fail("kill %d: post-kill journal unreadable: %v", s.row.Kills, berr)
			} else {
				s.ld.mu.Lock()
				acked, xor, injected := s.ld.acked, s.ld.xorIDs, s.ld.injected
				s.ld.mu.Unlock()
				if before.Total != acked-s.destroyedTotal || before.XorIDs != xor^s.destroyedXor {
					s.row.AuditFailures++
					s.fail("kill %d: durability: journal accounts %d records (ledger %x), clients hold %d (ledger %x)",
						s.row.Kills, before.Total, before.XorIDs, acked-s.destroyedTotal, xor^s.destroyedXor)
				}
				if before.Injected != injected-s.destroyedInjected {
					s.row.AuditFailures++
					s.fail("kill %d: durability: journal records %d injections, clients audited %d",
						s.row.Kills, before.Injected, injected-s.destroyedInjected)
				}
			}

			// Post-mortem disk damage, applied to the active segment only —
			// sealed segments model already-fsynced history a torn write
			// cannot reach. declare tracks whether the damage struck real
			// frames (and so must surface in the restart's resume report).
			declare := false
			in := faults.NewInjector(int64(s.cfg.Seed) + int64(s.row.Kills))
			if ev.Flip || pendingFlip {
				applied, ferr := faults.FlipWALBit(s.spec.WAL, in)
				if ferr != nil {
					return nil, fmt.Errorf("chaos: flip: %w", ferr)
				}
				if applied {
					s.row.BitFlips++
					declare = true
					pendingFlip = false
				} else {
					// Freshly rotated empty active: carry the flip to the
					// next kill, where load will have refilled it.
					pendingFlip = true
				}
			}
			if ev.Tear || pendingTear {
				applied, terr := faults.TearWAL(s.spec.WAL, in)
				if terr != nil {
					return nil, fmt.Errorf("chaos: tear: %w", terr)
				}
				if applied {
					declare = true
				} else {
					// Empty active segment: tearing the file to nothing is
					// the torn-rotation case (the fresh create never hit the
					// platter) — still a legitimate torn write, but with no
					// frames destroyed there is nothing to declare.
					if rerr := os.Remove(s.spec.WAL); rerr == nil {
						applied = true
					}
				}
				if applied {
					s.row.TornWrites++
					pendingTear = false
				} else {
					pendingTear = true
				}
			}

			// The orchestrator's own view of the surviving bytes, taken
			// after the damage: the baseline the restarted child must match,
			// and the before/after difference is exactly the history this
			// mutation destroyed — fold it into the destroyed ledger.
			preStats, verr := server.VerifyJournal(s.spec.WAL)
			if verr != nil {
				s.row.AuditFailures++
				s.fail("incarnation %d survivors unreadable: %v", s.incarnation+1, verr)
			} else if berr == nil {
				s.destroyedTotal += before.Total - preStats.Total
				s.destroyedXor ^= before.XorIDs ^ preStats.XorIDs
				s.destroyedInjected += before.Injected - preStats.Injected
			}
			if preStats.Injected != preStats.Detected || preStats.Injected != preStats.Recovered {
				s.row.UndetectedFaults++
				s.fail("survivor journal: injected %d detected %d recovered %d",
					preStats.Injected, preStats.Detected, preStats.Recovered)
			}
			s.checkDisk(preStats)

			s.incarnation++
			cmd, err = s.startChild(ctx, preStats, verr == nil, declare)
			if err != nil {
				return nil, err
			}
		case KindPause:
			s.logf("chaos: t=%s SIGSTOP for %s", time.Since(start).Round(time.Millisecond), ev.PauseFor)
			if err := cmd.Process.Signal(syscall.SIGSTOP); err != nil {
				return nil, fmt.Errorf("chaos: SIGSTOP: %w", err)
			}
			// kill(2) returns once the signal is pending, not once the child
			// has actually stopped — probe only after /proc agrees, or the
			// probe races the delivery window and wrongly convicts the child.
			if !waitStopped(cmd.Process.Pid, time.Second) {
				s.row.AuditFailures++
				s.fail("child never reached stopped state after SIGSTOP")
			}
			// A probe into the stopped process must stall past its own
			// deadline — if it completes, the pause never took hold. The
			// probe is a stateless GET: the frozen child will still serve it
			// after SIGCONT (the bytes wait in its socket buffer), and a
			// journaling probe would then mint a record no client audited.
			probeCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			if _, perr := s.ld.stats(probeCtx); perr == nil {
				s.row.AuditFailures++
				s.fail("request completed against a SIGSTOPped child")
			}
			cancel()
			time.Sleep(ev.PauseFor)
			if err := cmd.Process.Signal(syscall.SIGCONT); err != nil {
				return nil, fmt.Errorf("chaos: SIGCONT: %w", err)
			}
			s.row.Pauses++
		case KindBurst:
			volley := 6 * (s.cfg.QueueDepth + s.cfg.MaxInFlight)
			s.logf("chaos: t=%s burst of %d", time.Since(start).Round(time.Millisecond), volley)
			overloaded := s.ld.burst(ctx, volley)
			s.row.Bursts++
			if !overloaded {
				// The ladder was never seen off healthy; the burst may have
				// been absorbed. Not a violation, but the schedule wants the
				// overload path exercised — retry once, twice as hard.
				if !s.ld.burst(ctx, 2*volley) {
					s.logf("chaos: burst absorbed without visible overload")
				}
			}
		case KindAdversary:
			s.logf("chaos: t=%s adversarial volley", time.Since(start).Round(time.Millisecond))
			s.ld.adversaries(ctx)
		}
	}

	// Run the tail of the soak under plain load, then drain gracefully.
	for time.Since(start) < s.cfg.Duration && ctx.Err() == nil {
		s.ld.round(ctx, roundN, s.cfg.MaxInFlight)
	}
	s.harvest(ctx)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil, fmt.Errorf("chaos: SIGTERM: %w", err)
	}
	if werr := cmd.Wait(); werr != nil {
		s.row.AuditFailures++
		s.fail("drained child exited uncleanly: %v", werr)
	}
	cmd = nil

	// End-to-end verification: every record re-checked from first
	// principles, and the ledger reconciled — the journal must account for
	// exactly the requests the clients hold acknowledgements for.
	final, err := server.VerifyJournal(s.spec.WAL)
	if err != nil {
		s.row.SilentCorruptions++
		s.fail("final journal verification: %v", err)
	} else {
		s.checkDisk(final)
		ld := s.ld
		ld.mu.Lock()
		acked, xor := ld.acked, ld.xorIDs
		injected := ld.injected
		ld.mu.Unlock()
		if final.Total != acked-s.destroyedTotal {
			s.row.AuditFailures++
			s.fail("journal accounts %d requests, clients hold %d acknowledgements (%d destroyed by mutations)",
				final.Total, acked, s.destroyedTotal)
		}
		if final.XorIDs != xor^s.destroyedXor {
			s.row.AuditFailures++
			s.fail("journal ID ledger %x deviates from client ledger %x (destroyed %x)",
				final.XorIDs, xor, s.destroyedXor)
		}
		if final.Injected != injected-s.destroyedInjected {
			s.row.AuditFailures++
			s.fail("journal records %d injections, schedule placed %d on surviving acknowledged requests",
				final.Injected, injected-s.destroyedInjected)
		}
		if final.TornTail || final.Corrupt {
			s.row.AuditFailures++
			s.fail("journal still damaged after a clean drain: torn=%v corrupt=%v", final.TornTail, final.Corrupt)
		}
		s.row.JournalLive = final.Live
		s.row.JournalCompacted = final.Compacted
		s.row.JournalSegments = final.Segments
		s.row.JournalDiskBytes = final.DiskBytes
	}

	ld := s.ld
	ld.mu.Lock()
	s.row.Requests = ld.acked
	s.row.Injected = ld.injected
	s.row.Detected = ld.detected
	s.row.Recovered = ld.recovered
	s.row.Shed = ld.shed
	s.row.Rejected = ld.rejected
	s.row.Retries = ld.retries
	s.row.WriteFaults = ld.writeFaults
	s.row.SilentCorruptions += ld.silent
	s.row.UndetectedFaults += ld.undetected
	s.row.AuditFailures += ld.anomalies
	failures := append(s.failures, ld.failures...)
	ld.mu.Unlock()
	s.row.DegradedN = int(s.degraded)

	return &Result{Row: s.row, Failures: failures}, ctx.Err()
}
