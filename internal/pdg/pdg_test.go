package pdg

import (
	"testing"

	"defuse/internal/lang"
	"defuse/internal/poly"
)

const choleskySrc = `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

func extract(t *testing.T, src string) *Model {
	t.Helper()
	m, err := Extract(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExtractCholeskyDomains(t *testing.T) {
	m := extract(t, choleskySrc)
	if len(m.Stmts) != 2 {
		t.Fatalf("got %d statements", len(m.Stmts))
	}
	s1, s2 := m.Statement("S1"), m.Statement("S2")
	if s1 == nil || s2 == nil {
		t.Fatal("statements not found by label")
	}
	if !s1.ControlAffine || !s2.ControlAffine {
		t.Error("cholesky statements should be control-affine")
	}
	if !s1.FullyAffine() || !s2.FullyAffine() {
		t.Error("cholesky statements should be fully affine")
	}
	// I^{S1} = { S1[j] : 0 <= j <= n-1 }
	if !s1.Domain.Contains(map[string]int64{"j": 0, "n": 3}) ||
		s1.Domain.Contains(map[string]int64{"j": 3, "n": 3}) {
		t.Errorf("S1 domain wrong: %v", s1.Domain)
	}
	// I^{S2} = { S2[j,i] : 0 <= j <= n-1, j+1 <= i <= n-1 }
	if !s2.Domain.Contains(map[string]int64{"j": 0, "i": 1, "n": 3}) ||
		s2.Domain.Contains(map[string]int64{"j": 0, "i": 0, "n": 3}) {
		t.Errorf("S2 domain wrong: %v", s2.Domain)
	}
}

func TestExtractCholeskySchedules(t *testing.T) {
	// Paper Section 3.1: S1[j] -> [0,j,0,0,0], S2[j,i] -> [0,j,1,i,0].
	m := extract(t, choleskySrc)
	s1, s2 := m.Statement("S1"), m.Statement("S2")
	if m.Depth != 2 {
		t.Fatalf("depth = %d, want 2", m.Depth)
	}
	wantS1 := []string{"0", "j", "0", "0", "0"}
	wantS2 := []string{"0", "j", "1", "i", "0"}
	for i, w := range wantS1 {
		if s1.Schedule[i].String() != w {
			t.Errorf("S1 schedule[%d] = %v, want %s", i, s1.Schedule[i], w)
		}
	}
	for i, w := range wantS2 {
		if s2.Schedule[i].String() != w {
			t.Errorf("S2 schedule[%d] = %v, want %s", i, s2.Schedule[i], w)
		}
	}
}

func TestExtractAccesses(t *testing.T) {
	m := extract(t, choleskySrc)
	s2 := m.Statement("S2")
	if s2.Write.Array != "A" || !s2.Write.Affine || !s2.Write.IsWrite {
		t.Fatalf("S2 write access wrong: %+v", s2.Write)
	}
	if len(s2.Reads) != 2 {
		t.Fatalf("S2 has %d reads, want 2 (A[i][j], A[j][j])", len(s2.Reads))
	}
	// Verify the write relation maps S2[j,i] to A[i,j].
	env := map[string]int64{"j": 1, "i": 2, "n": 5,
		s2.Write.Rel.Out[0]: 2, s2.Write.Rel.Out[1]: 1}
	if !s2.Write.Rel.ContainsPair(env) {
		t.Errorf("write relation rejects A[2][1] at (j=1,i=2): %v", s2.Write.Rel)
	}
	env[s2.Write.Rel.Out[0]] = 1
	if s2.Write.Rel.ContainsPair(env) {
		t.Error("write relation accepts wrong element")
	}
}

func TestCompoundAssignAddsSelfRead(t *testing.T) {
	m := extract(t, `
program t(n)
float s, A[n];
for i = 0 to n - 1 {
  S1: s += A[i];
}
`)
	s1 := m.Statement("S1")
	if len(s1.Reads) != 2 {
		t.Fatalf("+= should read both s and A[i]; got %d reads", len(s1.Reads))
	}
	if s1.Reads[0].Array != "s" || s1.Reads[1].Array != "A" {
		t.Errorf("reads = %s, %s", s1.Reads[0].Array, s1.Reads[1].Array)
	}
	// Scalar access is a 0-dim affine relation.
	if !s1.Reads[0].Affine || len(s1.Reads[0].Rel.Out) != 0 {
		t.Error("scalar read should be 0-dim affine")
	}
}

func TestIrregularAccessFlagged(t *testing.T) {
	m := extract(t, `
program t(n)
float A[n], s;
int cols[n];
for i = 0 to n - 1 {
  S1: s += A[cols[i]];
}
`)
	s1 := m.Statement("S1")
	if s1.FullyAffine() {
		t.Error("indirect access should not be fully affine")
	}
	if !s1.ControlAffine {
		t.Error("control is still affine")
	}
	// Reads: s (affine scalar), A[cols[i]] (non-affine), cols[i] (affine).
	var aAff, colsAff *Access
	for k := range s1.Reads {
		switch s1.Reads[k].Array {
		case "A":
			aAff = &s1.Reads[k]
		case "cols":
			colsAff = &s1.Reads[k]
		}
	}
	if aAff == nil || aAff.Affine {
		t.Error("A[cols[i]] should be flagged non-affine")
	}
	if colsAff == nil || !colsAff.Affine {
		t.Error("cols[i] subscript read should be affine and counted")
	}
}

func TestWhileBodyNotControlAffine(t *testing.T) {
	m := extract(t, `
program t(n)
float A[n];
int k;
k = 0;
while (k < 10) {
  for i = 0 to n - 1 {
    S1: A[i] = A[i] + 1.0;
  }
  k = k + 1;
}
`)
	s1 := m.Statement("S1")
	if s1 == nil {
		t.Fatal("S1 not extracted")
	}
	if s1.ControlAffine {
		t.Error("statements under while must not be control-affine")
	}
	// But extracting the while body as a region makes them affine.
	prog := lang.MustParse(`
program t(n)
float A[n];
int k;
while (k < 10) {
  for i = 0 to n - 1 {
    S1: A[i] = A[i] + 1.0;
  }
}
`)
	w := prog.Body[0].(*lang.While)
	rm, err := ExtractRegion(prog, w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rs1 := rm.Statement("S1"); rs1 == nil || !rs1.ControlAffine {
		t.Error("region extraction should treat while body as affine")
	}
}

func TestIfBranchesNotAffineAndNumbered(t *testing.T) {
	m := extract(t, `
program t()
float x, a, b;
if (x > 0.0) {
  S1: a = 1.0;
} else {
  S2: b = 2.0;
}
`)
	s1, s2 := m.Statement("S1"), m.Statement("S2")
	if s1.ControlAffine || s2.ControlAffine {
		t.Error("if branches are data-dependent: not control-affine")
	}
}

func TestGeneratedIDs(t *testing.T) {
	m := extract(t, `
program t()
float x, y;
x = 1.0;
y = 2.0;
`)
	if m.Stmts[0].ID != "S1" || m.Stmts[1].ID != "S2" {
		t.Errorf("generated IDs = %s, %s", m.Stmts[0].ID, m.Stmts[1].ID)
	}
}

func TestNonAffineLoopBounds(t *testing.T) {
	m := extract(t, `
program t(n)
float A[n];
int k;
k = 5;
for i = 0 to k {
  S1: A[i] = 1.0;
}
`)
	s1 := m.Statement("S1")
	if s1.ControlAffine {
		t.Error("loop with variable (memory) bound is not affine")
	}
}

func TestExprToLin(t *testing.T) {
	isVar := func(s string) bool { return s == "i" || s == "n" }
	prog := lang.MustParse(`
program t(n)
float A[n];
for i = 0 to n - 1 {
  A[2 * i - n + 3] = 1.0;
}
`)
	sub := prog.Body[0].(*lang.For).Body[0].(*lang.Assign).LHS.Indices[0]
	lin, ok := ExprToLin(sub, isVar)
	if !ok {
		t.Fatal("affine subscript rejected")
	}
	if lin.Coeff("i") != 2 || lin.Coeff("n") != -1 || lin.Const() != 3 {
		t.Errorf("lin = %v", lin)
	}
}

func TestLinToExprRoundTrip(t *testing.T) {
	cases := []poly.LinExpr{
		poly.L(0),
		poly.L(-5),
		poly.V("n"),
		poly.V("n").Neg(),
		poly.V("n").Sub(poly.V("j")).AddConst(-1),
		poly.Term(3, "i").Add(poly.Term(-2, "j")).AddConst(7),
	}
	isVar := func(string) bool { return true }
	for _, want := range cases {
		e := LinToExpr(want)
		got, ok := ExprToLin(e, isVar)
		if !ok {
			t.Fatalf("LinToExpr(%v) produced non-affine %s", want, lang.ExprString(e))
		}
		if !got.Equal(want) {
			t.Errorf("round trip %v -> %s -> %v", want, lang.ExprString(e), got)
		}
	}
}

func TestPrecedesCholesky(t *testing.T) {
	m := extract(t, choleskySrc)
	s1, s2 := m.Statement("S1"), m.Statement("S2")
	prec := Precedes(s1, s2, "'")
	// S1[j] precedes S2[j',i'] iff j < j' (different outer iterations) or
	// j = j' (S1 comes first within the iteration).
	check := func(j, j2, i2 int64, want bool) {
		got := false
		for _, bm := range prec.Pieces {
			env := map[string]int64{"j": j, bm.Out[0]: j2, bm.Out[1]: i2, "n": 100}
			if bm.ContainsPair(env) {
				got = true
				break
			}
		}
		if got != want {
			t.Errorf("S1[%d] < S2[%d,%d] = %v, want %v", j, j2, i2, got, want)
		}
	}
	check(0, 0, 1, true)  // same j: S1 first
	check(0, 1, 2, true)  // earlier j
	check(2, 1, 2, false) // later j
	// And S2 precedes S1 only for strictly earlier j.
	prec2 := Precedes(s2, s1, "'")
	check2 := func(j, i, j2 int64, want bool) {
		got := false
		for _, bm := range prec2.Pieces {
			env := map[string]int64{"j": j, "i": i, bm.Out[0]: j2, "n": 100}
			if bm.ContainsPair(env) {
				got = true
				break
			}
		}
		if got != want {
			t.Errorf("S2[%d,%d] < S1[%d] = %v, want %v", j, i, j2, got, want)
		}
	}
	check2(0, 1, 1, true)
	check2(0, 1, 0, false) // S1[0] runs before S2[0,*]
	check2(2, 3, 2, false)
}

func TestPrecedesSequentialStatements(t *testing.T) {
	m := extract(t, `
program t()
float x, y;
S1: x = 1.0;
S2: y = 2.0;
`)
	s1, s2 := m.Statement("S1"), m.Statement("S2")
	p12 := Precedes(s1, s2, "'")
	if empty, _ := p12.IsEmpty(); empty {
		t.Error("S1 should precede S2")
	}
	p21 := Precedes(s2, s1, "'")
	if empty, _ := p21.IsEmpty(); !empty {
		t.Error("S2 should not precede S1")
	}
}
