package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"defuse/internal/bench"
	"defuse/internal/faults"
	"defuse/telemetry"
)

// newTestServer builds a service with observable health and metrics.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = &telemetry.Obs{Health: telemetry.NewHealth(), Metrics: telemetry.NewRegistry()}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post issues one /run request and returns the decoded response and status.
func post(t *testing.T, url string, req Request) (Response, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	hresp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer hresp.Body.Close()
	var resp Response
	if hresp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, hresp.StatusCode
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestVerifyRoundTrip: a clean verify request produces exactly the digest
// the client can compute without the server, and lands in the journal.
func TestVerifyRoundTrip(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "serve.wal")
	s, ts := newTestServer(t, Config{Words: 32, Epochs: 4, Seed: 77, WALPath: wal})
	resp, status := post(t, ts.URL, Request{ID: 1})
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	want := ReferenceDigest(32, 4, 77, 1)
	if resp.Digest != want || resp.RefDigest != want {
		t.Fatalf("digest = %x / ref %x, want %x", resp.Digest, resp.RefDigest, want)
	}
	if resp.Injected || resp.Detected || resp.Tainted {
		t.Fatalf("clean request reported %+v", resp)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	stats, err := VerifyJournal(wal)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != 1 || stats.Injected != 0 {
		t.Fatalf("journal stats = %+v, want 1 clean record", stats)
	}
}

// TestInjectedFaultDetectedAndRecovered: at fault rate 1 every verify request
// is injected; the epoch discipline guarantees boundary detection, rollback
// re-executes without the transient fault, and the final digest must land
// exactly on the clean reference.
func TestInjectedFaultDetectedAndRecovered(t *testing.T) {
	s, ts := newTestServer(t, Config{Words: 32, Epochs: 4, Seed: 9, FaultRate: 1, FaultSeed: 31})
	for id := uint64(1); id <= 4; id++ {
		resp, status := post(t, ts.URL, Request{ID: id})
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", id, status)
		}
		if !resp.Injected || !resp.Detected || !resp.Recovered || resp.Tainted {
			t.Fatalf("request %d: %+v, want injected+detected+recovered", id, resp)
		}
		if want := ReferenceDigest(32, 4, 9, id); resp.Digest != want {
			t.Fatalf("request %d: recovered digest %x, want reference %x", id, resp.Digest, want)
		}
	}
	st := s.Stats()
	if st.Injected != 4 || st.Detected != 4 || st.Recovered != 4 {
		t.Fatalf("stats = %+v, want 4/4/4", st)
	}
}

// TestQueueOverflowSheds: with the single slot held and the one queue seat
// taken, the next arrival is shed with 429 instead of piling up.
func TestQueueOverflowSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Words: 8, Epochs: 2, MaxInFlight: 1, QueueDepth: 1})
	s.slots <- struct{}{} // occupy the only slot

	first := make(chan int, 1)
	go func() {
		_, status := post(t, ts.URL, Request{ID: 1})
		first <- status
	}()
	waitFor(t, "request 1 to queue", func() bool { return s.queued.Load() == 1 })

	if _, status := post(t, ts.URL, Request{ID: 2}); status != http.StatusTooManyRequests {
		t.Fatalf("overflow arrival: status %d, want 429", status)
	}

	<-s.slots // free the slot; the queued request proceeds
	if status := <-first; status != http.StatusOK {
		t.Fatalf("queued request: status %d, want 200", status)
	}
	if st := s.Stats(); st.Shed != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v, want 1 shed, 1 completed", st)
	}
}

// TestDrainCompletesInFlightAndRejectsNew: an admitted request runs to
// verified completion across a drain; arrivals during the drain get 503; the
// sealed journal holds exactly the completed request.
func TestDrainCompletesInFlightAndRejectsNew(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "drain.wal")
	health := telemetry.NewHealth()
	s, ts := newTestServer(t, Config{
		Words: 16, Epochs: 2, Seed: 5, MaxInFlight: 2, WALPath: wal,
		Obs: &telemetry.Obs{Health: health, Metrics: telemetry.NewRegistry()},
	})

	// Steal every pooled tracker so the admitted request parks inside
	// execute — in flight, deterministically, for as long as we choose.
	t1 := <-s.trackers.ch
	t2 := <-s.trackers.ch

	inFlight := make(chan Response, 1)
	go func() {
		resp, status := post(t, ts.URL, Request{ID: 1})
		if status != http.StatusOK {
			t.Errorf("in-flight request: status %d, want 200", status)
		}
		inFlight <- resp
	}()
	waitFor(t, "request to be admitted", func() bool { return health.InFlight() == 1 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	waitFor(t, "drain to start", func() bool { return s.Draining() })

	if !health.Draining() || health.Ready() {
		t.Fatal("health not flipped to draining/unready")
	}
	if _, status := post(t, ts.URL, Request{ID: 2}); status != http.StatusServiceUnavailable {
		t.Fatalf("arrival during drain: status %d, want 503", status)
	}

	// Hand the trackers back: the in-flight request completes and verifies.
	s.trackers.ch <- t1
	s.trackers.ch <- t2
	resp := <-inFlight
	if want := ReferenceDigest(16, 2, 5, 1); resp.Digest != want {
		t.Fatalf("in-flight digest %x, want %x", resp.Digest, want)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	stats, err := VerifyJournal(wal)
	if err != nil || stats.Total != 1 {
		t.Fatalf("sealed journal: stats %+v, err %v, want exactly the in-flight record", stats, err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejected", st)
	}
}

// TestDrainReleasesQueuedWaiters: a request waiting for a slot is released
// with 503 the moment the drain starts — its work has not begun, so nothing
// is lost by refusing it.
func TestDrainReleasesQueuedWaiters(t *testing.T) {
	s, ts := newTestServer(t, Config{Words: 8, Epochs: 2, MaxInFlight: 1, QueueDepth: 4})
	s.slots <- struct{}{} // occupy the only slot so the request queues

	queued := make(chan int, 1)
	go func() {
		_, status := post(t, ts.URL, Request{ID: 1})
		queued <- status
	}()
	waitFor(t, "request to queue", func() bool { return s.queued.Load() == 1 })

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if status := <-queued; status != http.StatusServiceUnavailable {
		t.Fatalf("queued waiter: status %d, want 503", status)
	}
}

// TestDeadlineExceededIsTerminal: an already-expired per-request deadline
// propagates through supervision as a terminal error, reported as 504.
func TestDeadlineExceededIsTerminal(t *testing.T) {
	_, ts := newTestServer(t, Config{Words: 8, Epochs: 2, Timeout: time.Nanosecond})
	_, status := post(t, ts.URL, Request{ID: 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
}

// TestJournalResume: a drained journal reopens with its records intact and
// re-verified, accepts appends for fresh request IDs, and the final journal
// verifies end to end.
func TestJournalResume(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "resume.wal")
	cfg := Config{Words: 16, Epochs: 3, Seed: 11, FaultRate: 0.5, FaultSeed: 42, WALPath: wal}

	s1, ts1 := newTestServer(t, cfg)
	for id := uint64(1); id <= 5; id++ {
		if _, status := post(t, ts1.URL, Request{ID: id}); status != http.StatusOK {
			t.Fatalf("request %d: status %d", id, status)
		}
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2, ts2 := newTestServer(t, cfg)
	info := s2.Resume()
	if info.Records != 5 || !info.Reverified || info.LastID != 5 {
		t.Fatalf("resume info = %+v, want 5 re-verified records ending at ID 5", info)
	}
	for id := uint64(6); id <= 8; id++ {
		if _, status := post(t, ts2.URL, Request{ID: id}); status != http.StatusOK {
			t.Fatalf("request %d: status %d", id, status)
		}
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	stats, err := VerifyJournal(wal)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != 8 {
		t.Fatalf("journal holds %d records, want 8", stats.Total)
	}
	if stats.Injected != stats.Detected || stats.Injected != stats.Recovered {
		t.Fatalf("stats = %+v, want injected == detected == recovered", stats)
	}
}

// TestResumeRefusesSilentCorruption: a journal whose newest record claims a
// clean result that disagrees with the recomputed reference must not be
// resumed over.
func TestResumeRefusesSilentCorruption(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "bad.wal")
	j, _, err := openJournal(wal, journalConfig{})
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	rec := JournalRecord{
		ID: 1, Kind: KindVerify, Words: 8, Epochs: 2, Seed: 3,
		RefDigest: ReferenceDigest(8, 2, 3, 1),
	}
	rec.Digest = rec.RefDigest ^ 1 // silent corruption: wrong result, not flagged
	if err := j.append(rec); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if _, _, err := openJournal(wal, journalConfig{}); err == nil {
		t.Fatal("openJournal resumed over silent corruption")
	}
	if _, err := VerifyJournal(wal); err == nil {
		t.Fatal("VerifyJournal accepted silent corruption")
	}
}

// TestKernelRequestsAreDeterministic: pooled kernel runners reproduce the
// warmup reference digest on every request, including after reset.
func TestKernelRequestsAreDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Words: 8, Epochs: 2, Kernel: "jacobi1d", Scale: 0.001, MaxInFlight: 2,
	})
	ref := s.KernelRef()
	if ref == 0 {
		t.Fatal("kernel pool has no warmup reference")
	}
	for id := uint64(1); id <= 3; id++ {
		resp, status := post(t, ts.URL, Request{ID: id, Kind: KindKernel})
		if status != http.StatusOK {
			t.Fatalf("kernel request %d: status %d", id, status)
		}
		if resp.Digest != ref || resp.RefDigest != ref {
			t.Fatalf("kernel request %d: digest %x, want warmup reference %x", id, resp.Digest, ref)
		}
		if resp.Detected || resp.Tainted {
			t.Fatalf("clean kernel request %d reported %+v", id, resp)
		}
	}
}

// TestLoadGenAuditsServer: the load generator drives concurrent streams with
// mirrored fault sampling and its gate passes against an honest server.
func TestLoadGenAuditsServer(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "load.wal")
	s, ts := newTestServer(t, Config{
		Words: 24, Epochs: 3, Seed: 19, MaxInFlight: 4,
		FaultRate: 0.25, FaultSeed: 7, WALPath: wal,
	})
	res, err := RunLoad(context.Background(), LoadConfig{
		Target: ts.URL, Streams: 4, Requests: 40,
		Words: 24, Epochs: 3, Seed: 19,
		FaultRate: 0.25, FaultSeed: 7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("Gate: %v (row %+v)", err, res.Row)
	}
	if res.Row.Injected == 0 {
		t.Fatalf("row = %+v, want at least one injected request at rate 0.25", res.Row)
	}
	if res.Row.P50Seconds <= 0 || res.Row.P999Seconds < res.Row.P50Seconds {
		t.Fatalf("quantiles p50=%v p999=%v look wrong", res.Row.P50Seconds, res.Row.P999Seconds)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	stats, err := VerifyJournal(wal)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != 40 || stats.Injected != res.Row.Injected {
		t.Fatalf("journal %+v disagrees with loadgen row %+v", stats, res.Row)
	}
}

// cleanRow is a passing loadgen result for gate tests.
func cleanRow() bench.ServiceRow {
	return bench.ServiceRow{
		Streams: 4, Requests: 100, FaultRate: 0.1,
		Injected: 10, Detected: 10, Recovered: 10,
		Clean: 90, Shed: 3, Rejected: 1,
		P50Seconds: 0.001, P99Seconds: 0.01, P999Seconds: 0.02,
	}
}

// TestGateRejections: the gate refuses every failure class and accepts the
// clean row.
func TestGateRejections(t *testing.T) {
	clean := LoadResult{Row: cleanRow()}
	if err := clean.Gate(); err != nil {
		t.Fatalf("clean row rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LoadResult)
		want string
	}{
		{"audit", func(r *LoadResult) { r.Mismatches = []string{"request 3: wrong digest"} }, "audit"},
		{"errors", func(r *LoadResult) { r.Row.Errors = 2 }, "errored"},
		{"undetected", func(r *LoadResult) { r.Row.Detected = r.Row.Injected - 1 }, "detected"},
		{"unrecovered", func(r *LoadResult) { r.Row.Recovered = r.Row.Injected - 1 }, "recovered"},
		{"cleanMismatch", func(r *LoadResult) { r.Row.CleanMismatches = 1 }, "clean"},
		{"empty", func(r *LoadResult) { r.Row = cleanRow(); r.Row.Requests = 0 }, "no requests"},
	}
	for _, tc := range cases {
		r := LoadResult{Row: cleanRow()}
		tc.mut(&r)
		err := r.Gate()
		if err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
			continue
		}
		if !contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestLiveSamplerAgreesWithServer: the server and an independent sampler with
// the same parameters pick the same requests — the property the loadgen
// audit rests on.
func TestLiveSamplerAgreesWithServer(t *testing.T) {
	_, ts := newTestServer(t, Config{Words: 8, Epochs: 2, Seed: 1, FaultRate: 0.5, FaultSeed: 99})
	local := faults.NewLiveSampler(0.5, 99)
	for id := uint64(1); id <= 20; id++ {
		resp, status := post(t, ts.URL, Request{ID: id})
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", id, status)
		}
		if resp.Injected != local.Sample(id) {
			t.Fatalf("request %d: server injected=%v, local sampler says %v", id, resp.Injected, local.Sample(id))
		}
	}
}

// TestRequestSizeCaps: oversized verify requests are refused rather than
// letting one client monopolize a slot.
func TestRequestSizeCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{Words: 16, Epochs: 2})
	if _, status := post(t, ts.URL, Request{ID: 1, Words: 1 << 20}); status == http.StatusOK {
		t.Fatal("oversized request accepted")
	}
}

func contains(s, sub string) bool {
	return strings.Contains(s, sub)
}
