package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4): a writer for registry snapshots, a minimal parser, and a linter
// used by tests and the -metrics flag to guarantee that everything the
// registry exports is scrapeable.

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// renderLabels renders {k="v",...} with an optional extra label appended.
func renderLabels(labels map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, k, escapeLabelValue(labels[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraKey, escapeLabelValue(extraVal)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the snapshot in the text exposition format, one
// "# TYPE" header per metric family followed by its samples.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	for _, m := range s.Metrics {
		if !typed[m.Name] {
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Kind)
			typed[m.Name] = true
		}
		switch m.Kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", m.Name, renderLabels(m.Labels, "", ""), formatFloat(m.Value))
		case kindHistogram:
			for _, b := range m.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.Name, renderLabels(m.Labels, "le", b.LE), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.Name, renderLabels(m.Labels, "", ""), formatFloat(m.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.Name, renderLabels(m.Labels, "", ""), m.Count)
		}
	}
	return bw.Flush()
}

// WritePrometheus exports the current registry state (see Snapshot).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// Sample is one parsed exposition-format sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Type    string
	Samples []Sample
}

// ParsePrometheus parses text in the exposition format, returning families
// keyed by name. Histogram _bucket/_sum/_count samples are attached to
// their base family.
func ParsePrometheus(r io.Reader) (map[string]*Family, error) {
	families := map[string]*Family{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
					}
					name, typ := fields[2], fields[3]
					if !metricNameRe.MatchString(name) {
						return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
					}
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
					}
					if f, ok := families[name]; ok && f.Type != "" {
						return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
					}
					f := familyFor(families, name)
					f.Type = typ
				}
			}
			continue
		}
		samp, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyFor(families, baseName(samp.Name, families))
		fam.Samples = append(fam.Samples, samp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familyFor finds or creates a family record.
func familyFor(families map[string]*Family, name string) *Family {
	f, ok := families[name]
	if !ok {
		f = &Family{Name: name}
		families[name] = f
	}
	return f
}

// baseName strips histogram sample suffixes when the base family is typed
// as a histogram (or summary).
func baseName(sample string, families map[string]*Family) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return sample
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may follow the value; we only emit plain samples but
	// accept the general form.
	if j := strings.IndexAny(valStr, " \t"); j >= 0 {
		valStr = valStr[:j]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %q value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i], name)
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated value for label %q", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		dst[name] = b.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// Lint parses exposition-format text and enforces the structural rules the
// format requires of scrapeable output: every sample belongs to a typed
// family, histogram families carry coherent _bucket/_sum/_count series, and
// bucket counts are cumulative with a closing +Inf bucket.
func Lint(r io.Reader) error {
	families, err := ParsePrometheus(r)
	if err != nil {
		return err
	}
	for name, f := range families {
		if f.Type == "" {
			return fmt.Errorf("lint: family %q has samples but no TYPE line", name)
		}
		if f.Type != "histogram" {
			continue
		}
		if err := lintHistogram(f); err != nil {
			return fmt.Errorf("lint: family %q: %v", name, err)
		}
	}
	return nil
}

// lintHistogram checks one histogram family's series coherence per label set.
func lintHistogram(f *Family) error {
	type series struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	groups := map[string]*series{}
	groupKey := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for i := range f.Samples {
		s := f.Samples[i]
		g := groups[groupKey(s.Labels)]
		if g == nil {
			g = &series{}
			groups[groupKey(s.Labels)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("bucket sample missing le label")
			}
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = &f.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			g.count = &f.Samples[i]
		default:
			return fmt.Errorf("unexpected sample %q in histogram family", s.Name)
		}
	}
	for key, g := range groups {
		if len(g.buckets) == 0 || g.sum == nil || g.count == nil {
			return fmt.Errorf("series {%s} incomplete (buckets/sum/count required)", key)
		}
		sort.Slice(g.buckets, func(i, j int) bool {
			li, _ := parseValue(g.buckets[i].Labels["le"])
			lj, _ := parseValue(g.buckets[j].Labels["le"])
			return li < lj
		})
		last := g.buckets[len(g.buckets)-1]
		le, err := parseValue(last.Labels["le"])
		if err != nil || !math.IsInf(le, 1) {
			return fmt.Errorf("series {%s} missing +Inf bucket", key)
		}
		prev := -1.0
		for _, b := range g.buckets {
			if b.Value < prev {
				return fmt.Errorf("series {%s} bucket counts not cumulative", key)
			}
			prev = b.Value
		}
		if last.Value != g.count.Value {
			return fmt.Errorf("series {%s} +Inf bucket %v != count %v", key, last.Value, g.count.Value)
		}
	}
	return nil
}

// writeFile atomically-enough writes content to path.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
