package defuse

// This file regenerates the paper's evaluation through testing.B benchmarks:
// one benchmark family per table/figure. Run with
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1*   — fault-coverage trials (Table 1 cells)
// BenchmarkFig10*    — Original / Resilient / Resilient-Optimized variants
//                      of each Table 2 kernel (Figure 10): the ns/op ratio
//                      between variants is the normalized runtime
// BenchmarkFig11*    — the hardware-assisted estimate is derived from op
//                      counts; the bench exercises the estimator pipeline
// BenchmarkCompile   — instrumentation (compile-time) cost itself

import (
	"fmt"
	"testing"

	"defuse/internal/bench"
	"defuse/internal/checksum"
	"defuse/internal/faults"
	"defuse/internal/hwsim"
)

// benchScale keeps interpreter-based kernels fast under testing.B.
const benchScale = 0.004

// BenchmarkTable1Coverage runs one Table 1 trial batch per iteration for the
// headline cells (2-6 flips on random data, one and two checksums).
func BenchmarkTable1Coverage(b *testing.B) {
	for _, flips := range []int{2, 3, 6} {
		for _, dual := range []bool{false, true} {
			name := fmt.Sprintf("flips=%d/dual=%v", flips, dual)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := faults.Table1Cell(100, flips, faults.Random, dual, 100, int64(i))
					if err != nil {
						b.Fatal(err)
					}
					if r.Trials != 100 {
						b.Fatal("bad trial count")
					}
				}
			})
		}
	}
}

// BenchmarkTable1Checksum measures the raw checksum operators used by the
// coverage study (the per-word cost that Table 1's scheme pays).
func BenchmarkTable1Checksum(b *testing.B) {
	data := make([]uint64, 1<<14)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	for _, k := range []checksum.Kind{checksum.ModAdd, checksum.XOR, checksum.OnesComp, checksum.Fletcher64} {
		b.Run(k.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= checksum.Sum(k, data)
			}
			_ = sink
		})
	}
	b.Run("dual-modadd", func(b *testing.B) {
		b.SetBytes(int64(len(data) * 8))
		var sink uint64
		for i := 0; i < b.N; i++ {
			f, s := checksum.DualSum(checksum.ModAdd, data)
			sink ^= f ^ s
		}
		_ = sink
	})
}

// BenchmarkFig10 runs every Table 2 kernel in each Figure 10 variant; the
// per-variant ns/op ratios reproduce the figure's normalized runtimes.
func BenchmarkFig10(b *testing.B) {
	for _, bm := range bench.Suite() {
		for _, v := range []bench.Variant{bench.Original, bench.Resilient, bench.ResilientOpt} {
			b.Run(fmt.Sprintf("%s/%s", bm.Name, v), func(b *testing.B) {
				prog, err := bm.BuildVariant(v)
				if err != nil {
					b.Fatal(err)
				}
				params := bm.Params(benchScale)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m, err := NewMachine(prog, params)
					if err != nil {
						b.Fatal(err)
					}
					bm.InitDefault(m, params)
					b.StartTimer()
					if err := m.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11Estimator measures the hardware checksum-unit estimate
// pipeline: an instrumented run plus the cost-model evaluation.
func BenchmarkFig11Estimator(b *testing.B) {
	bm, err := bench.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bm.BuildVariant(bench.ResilientOpt)
	if err != nil {
		b.Fatal(err)
	}
	params := bm.Params(benchScale)
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(prog, params)
		if err != nil {
			b.Fatal(err)
		}
		bm.InitDefault(m, params)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		if hwsim.HardwareCost(m.Counts, hwsim.DefaultConfig()) <= 0 {
			b.Fatal("zero cost")
		}
	}
}

// BenchmarkCompile measures the instrumentation pipeline itself (polyhedral
// analysis, use counts, splitting) per kernel.
func BenchmarkCompile(b *testing.B) {
	for _, bm := range bench.Suite() {
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bm.BuildVariant(bench.ResilientOpt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGoInstr measures Go source instrumentation throughput.
func BenchmarkGoInstr(b *testing.B) {
	src := `package p

func kernel(a float64, b float64) float64 {
	t := a * b
	u := t + a
	v := u * t
	return v - b
}
`
	for i := 0; i < b.N; i++ {
		if _, _, err := InstrumentGo("p.go", src, GoOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
