package faults

import (
	"context"

	"defuse/internal/dme"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// This file runs one injection trial against the DME backend: the same
// epoch-structured kernel as epochtrial.go, executed twice per epoch on two
// dme.Variants with rotated layouts, cross-checked at every verified
// boundary. The fault — data flips or an address fault — strikes variant A
// only (a transient strikes one execution, and the rotated layout means even
// a recurring physical fault would corrupt different logical words in each
// variant), so any divergence between the variants is evidence of it.

// dmeTrialSnap checkpoints both variants; the supervisor's rollback restores
// them together so the pair re-enters the epoch synchronized.
type dmeTrialSnap struct {
	a, b dme.Snapshot
}

// runDMETrial executes one supervised DME trial and tallies its outcome,
// mirroring runEpochTrial's draw schedule exactly: the same (seed, trial)
// races the same fault coordinates on every backend, so per-backend
// comparison cells differ only in the detector.
func runDMETrial(ctx context.Context, cfg CoverageConfig, trial int, inst cellInstruments, span telemetry.SpanContext) (trialTally, error) {
	words, epochs := cfg.Words, cfg.Epochs
	in := NewInjector(trialSeed(cfg.Seed, trial))

	init := make([]uint64, words)
	in.Fill(init, cfg.Pattern)
	injEpoch := in.Intn(epochs)
	injWord := in.Intn(words)
	flips := in.PickBits(words, cfg.BitFlips)
	// Detector-target draws, consumed unused for stream parity with the
	// checksum backend (DME cells are data-target only).
	in.Intn(4)
	in.Intn(64)
	in.Intn(64)
	in.Intn(words + 4)
	in.Intn(64)
	addrTarget, addrSkip := drawAddrFault(in, cfg.AddrFault, injWord, words)

	// Variant A keeps the identity layout; B's rotation places every logical
	// word at a different physical location (any nonzero shift mod words).
	shiftB := words / 2
	if shiftB == 0 {
		shiftB = 1
	}
	a := dme.NewVariant(words, 0)
	b := dme.NewVariant(words, shiftB)
	for i := 0; i < words; i++ {
		a.Poke(i, init[i])
		b.Poke(i, init[i])
	}

	injected := false
	dataInjected := !(cfg.AddrFault != AddrNone && addrSkip)

	run := func(k int) error {
		for i := 0; i < words; i++ {
			loadIdx, storeIdx := i, i
			if !injected && k == injEpoch && i == injWord {
				injected = true
				if cfg.AddrFault != AddrNone {
					if !addrSkip {
						loadIdx = addrTarget
						if cfg.AddrFault == AddrAlias {
							storeIdx = addrTarget
						}
						telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
							"trial": trial, "epoch": k, "scheme": "epoch", "backend": "dme",
							"fault": cfg.AddrFault.String(), "intent": i, "effective": addrTarget,
						})
					}
				} else {
					for _, f := range flips {
						a.FlipBit(f.Word, f.Bit)
					}
					telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
						"trial": trial, "epoch": k, "scheme": "epoch", "backend": "dme",
						"words": words, "target": cfg.Target.String(),
					})
				}
			}
			a.Store(storeIdx, update(a.Load(loadIdx)))
		}
		// Variant B runs the same epoch clean, after A — sequential dual
		// execution, as a single-core deployment would schedule it.
		for i := 0; i < words; i++ {
			b.Store(i, update(b.Load(i)))
		}
		return nil
	}

	verify := func(k int) error {
		if cfg.EndOnlyVerify && k != epochs-1 {
			return nil
		}
		return dme.CrossCheck(a, b)
	}

	pol := recovery.Policy{}
	if cfg.Recover {
		retries := cfg.MaxRetries
		if retries <= 0 {
			retries = 2
		}
		pol = recovery.Policy{MaxRetries: retries, MaxRestarts: 1}
	}

	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs: epochs,
		Run:    run,
		Verify: verify,
		Checkpoint: func() any {
			return dmeTrialSnap{a: a.Snapshot(), b: b.Snapshot()}
		},
		Restore: func(snap any) error {
			s := snap.(dmeTrialSnap)
			if cfg.Hardened {
				if rerr := a.Restore(s.a); rerr != nil {
					return rerr
				}
				return b.Restore(s.b)
			}
			if rerr := a.RestoreUnchecked(s.a); rerr != nil {
				return rerr
			}
			return b.RestoreUnchecked(s.b)
		},
		Policy:  pol,
		Trace:   cfg.Trace,
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
		Span:    span,
	})
	if err != nil {
		return trialTally{}, err
	}

	skipped := cfg.AddrFault != AddrNone && addrSkip
	tally := trialTally{
		skipped:          skipped,
		undetected:       !out.Detected && !skipped,
		detected:         out.Detected,
		tainted:          out.Tainted,
		retries:          out.Retries,
		restarts:         out.Restarts,
		rebuilds:         out.Rebuilds,
		detectorFaults:   out.DetectorFaults,
		checkpointFaults: out.CheckpointFaults,
	}
	if out.Detected {
		tally.latency = out.FirstDetection - injEpoch
	}
	finalOK := dmeFinalCorrect(a, init, epochs) && dmeFinalCorrect(b, init, epochs)
	if out.Recovered && finalOK {
		tally.recovered = true
	}
	tally.falseNegative = !out.Detected && !finalOK
	tally.falsePositive = !dataInjected && out.DataFaults > 0

	if !skipped {
		inst.record(tally.undetected)
	}
	if tally.detected {
		inst.latency.Observe(float64(tally.latency))
	}
	if tally.recovered {
		inst.recovered.Inc()
	}
	return tally, nil
}

// dmeFinalCorrect reports whether a variant's logical content is exactly the
// fault-free final state.
func dmeFinalCorrect(v *dme.Variant, init []uint64, epochs int) bool {
	for i, val := range init {
		for e := 0; e < epochs; e++ {
			val = update(val)
		}
		if v.Peek(i) != val {
			return false
		}
	}
	return true
}
