package defuse

import (
	"errors"
	"strings"
	"testing"

	"defuse/internal/faults"
	"defuse/internal/interp"
)

const quickSrc = `
program axpy(n)
float x[n], y[n], a;
a = 2.5;
for i = 0 to n - 1 {
  S1: y[i] = y[i] + a * x[i];
}
`

func TestCompileAndExecute(t *testing.T) {
	res, err := Compile(quickSrc, Options{Split: true, Inspector: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Source, "add_to_chksm") {
		t.Error("instrumented source lacks checksum code")
	}
	m, err := NewMachine(res.Prog, map[string]int64{"n": 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		m.SetFloat("x", float64(i), i)
		m.SetFloat("y", 1.0, i)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("fault-free run flagged: %v", err)
	}
	y5, _ := m.Float("y", 5)
	if y5 != 1.0+2.5*5 {
		t.Errorf("y[5] = %v", y5)
	}
}

func TestCompileDetectsFault(t *testing.T) {
	res, err := Compile(quickSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(res.Prog, map[string]int64{"n": 16})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := m.Region("x")
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	m.SetStepHook(func(step uint64) {
		if !fired && step == 20 {
			m.Mem().FlipBit(base+15, 33) // corrupt x[15] before its use
			fired = true
		}
	})
	err = m.Run()
	var de *interp.DetectionError
	if !errors.As(err, &de) {
		t.Fatalf("fault not detected: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("garbage", Options{}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Compile("program p() y = 1;", Options{}); err == nil {
		t.Error("expected check error")
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	p, err := Parse(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := PrintProgram(p)
	if _, err := Parse(printed); err != nil {
		t.Errorf("print not reparseable: %v", err)
	}
}

func TestFaultCoverageFacade(t *testing.T) {
	r, err := FaultCoverage(CoverageConfig{
		Kind: 0, Words: 64, BitFlips: 1, Pattern: faults.Random, Trials: 500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Undetected != 0 {
		t.Errorf("single-bit errors must always be caught, %d escaped", r.Undetected)
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if len(Benchmarks()) != 10 {
		t.Error("expected the 10 Table 2 benchmarks")
	}
	if _, err := Benchmark("LU"); err != nil {
		t.Error(err)
	}
	if _, err := Benchmark("bogus"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestInstrumentGoFacade(t *testing.T) {
	out, rep, err := InstrumentGo("x.go", `package p

func f(a float64) float64 {
	b := a * 2.0
	return b + a
}
`, GoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rt.NewTracker") {
		t.Error("missing tracker")
	}
	if len(rep.Tracked["f"]) == 0 {
		t.Error("nothing tracked")
	}
}

func TestDescribe(t *testing.T) {
	res, err := Compile(quickSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := Describe(res); !strings.Contains(s, "static") {
		t.Errorf("Describe = %q", s)
	}
}
