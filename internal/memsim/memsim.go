// Package memsim simulates the memory subsystem of the paper's fault model
// (Section 2.2): a word-addressed store that is vulnerable to bit flips
// between a write and a subsequent read, while processor state (registers,
// ALU) is assumed resilient. The interpreter executes programs against this
// memory, and fault-injection experiments corrupt words between operations.
package memsim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Memory is a flat word-addressed memory with load/store accounting and an
// optional load hook for modeling in-flight corruption.
type Memory struct {
	words  []uint64
	loads  uint64
	stores uint64

	// loadHook, when set, may substitute the value observed by a load
	// (modeling a fault in the data path or address logic).
	loadHook func(addr int, raw uint64) uint64

	// faultHook, when set, observes every FlipBit call, so experiment
	// harnesses can stream fault-injection telemetry without wrapping
	// every injection site.
	faultHook func(addr, bit int)

	// redirect, when set, maps an access's intended address to the one it
	// actually touches — modeling an address-generation fault (a corrupted
	// index register) rather than a data fault. The returned address must
	// be in bounds.
	redirect func(store bool, addr int) int

	// accessHook, when set, observes every Load/Store with both the
	// intended and the effective address; internal/addrsum folds the pair
	// into its address-stream checksums through this hook.
	accessHook func(store bool, intent, effective int)
}

// New returns a memory with the given capacity in 64-bit words.
func New(words int) *Memory {
	return &Memory{words: make([]uint64, words)}
}

// Size returns the memory capacity in words.
func (m *Memory) Size() int { return len(m.words) }

// Load reads the word at addr.
func (m *Memory) Load(addr int) uint64 {
	if addr < 0 || addr >= len(m.words) {
		panic(fmt.Sprintf("memsim: load out of bounds: %d of %d", addr, len(m.words)))
	}
	eff := addr
	if m.redirect != nil {
		eff = m.redirect(false, addr)
		if eff < 0 || eff >= len(m.words) {
			panic(fmt.Sprintf("memsim: redirected load out of bounds: %d of %d", eff, len(m.words)))
		}
	}
	m.loads++
	raw := m.words[eff]
	if m.accessHook != nil {
		m.accessHook(false, addr, eff)
	}
	if m.loadHook != nil {
		raw = m.loadHook(eff, raw)
	}
	return raw
}

// Store writes the word at addr.
func (m *Memory) Store(addr int, v uint64) {
	if addr < 0 || addr >= len(m.words) {
		panic(fmt.Sprintf("memsim: store out of bounds: %d of %d", addr, len(m.words)))
	}
	eff := addr
	if m.redirect != nil {
		eff = m.redirect(true, addr)
		if eff < 0 || eff >= len(m.words) {
			panic(fmt.Sprintf("memsim: redirected store out of bounds: %d of %d", eff, len(m.words)))
		}
	}
	m.stores++
	if m.accessHook != nil {
		m.accessHook(true, addr, eff)
	}
	m.words[eff] = v
}

// Peek reads a word without counting it as a program load (experiment
// harness use).
func (m *Memory) Peek(addr int) uint64 { return m.words[addr] }

// Words returns a copy of the full memory image. Differential harnesses use
// it to assert byte-identical state across execution backends; it does not
// perturb the access counters.
func (m *Memory) Words() []uint64 { return append([]uint64(nil), m.words...) }

// Poke writes a word without counting it as a program store (initialization
// and fault injection).
func (m *Memory) Poke(addr int, v uint64) { m.words[addr] = v }

// FlipBit flips one bit of the word at addr, modeling a transient fault in
// stored data.
func (m *Memory) FlipBit(addr, bit int) {
	if bit < 0 || bit > 63 {
		panic(fmt.Sprintf("memsim: bit %d out of range", bit))
	}
	m.words[addr] ^= 1 << uint(bit)
	if m.faultHook != nil {
		m.faultHook(addr, bit)
	}
}

// ErrCheckpointCorrupt reports that a snapshot failed its integrity digest:
// a fault struck the checkpoint copy while it was parked in memory. Restore
// refuses such a snapshot; recovery must escalate (typically to a restart
// from known-good initial state) rather than resurrect corrupted data.
var ErrCheckpointCorrupt = errors.New("memsim: checkpoint integrity digest mismatch")

// Snapshot is a sealed copy of the memory contents taken for epoch
// checkpointing, covered by an integrity digest computed at capture time.
// Checkpoints are themselves ordinary memory under the fault model of
// Section 2.2 — nothing stops a bit flip from landing on a word that is
// waiting to be restored — so Restore verifies the digest first.
type Snapshot struct {
	words  []uint64
	digest uint64
	sealed bool
}

// Len returns the number of words captured in the snapshot.
func (s *Snapshot) Len() int { return len(s.words) }

// Word returns the captured word at addr (experiment harness use).
func (s *Snapshot) Word(addr int) uint64 { return s.words[addr] }

// Digest returns the integrity digest sealed over the snapshot at capture
// time. Differential harnesses compare digests across execution backends as a
// compact equality witness for whole memory images.
func (s *Snapshot) Digest() uint64 { return s.digest }

// FlipBit flips one bit of the captured word at addr without updating the
// digest — the footprint of a transient fault striking the parked checkpoint.
// It exists for fault-injection campaigns that target the checkpoint itself.
func (s *Snapshot) FlipBit(addr, bit int) {
	if bit < 0 || bit > 63 {
		panic(fmt.Sprintf("memsim: bit %d out of range", bit))
	}
	s.words[addr] ^= 1 << uint(bit)
}

// Verify reports whether the snapshot's contents still match the digest
// computed when it was captured. A failure is ErrCheckpointCorrupt (wrapped).
func (s *Snapshot) Verify() error {
	if !s.sealed {
		return errors.New("memsim: unsealed Snapshot")
	}
	if digestWords(s.words) != s.digest {
		return ErrCheckpointCorrupt
	}
	return nil
}

// digestWords chains the words through the splitmix64 finalizer. Chaining
// makes it order- and length-sensitive; a single flipped bit anywhere in the
// snapshot changes the result.
func digestWords(words []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15) + uint64(len(words))
	for _, w := range words {
		h ^= w
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Encode renders a sealed snapshot in its stable binary form: a little-endian
// uint64 word count, the words, and the integrity digest last.
func (s *Snapshot) Encode() ([]byte, error) {
	if !s.sealed {
		return nil, errors.New("memsim: Encode of an unsealed Snapshot")
	}
	b := make([]byte, (len(s.words)+2)*8)
	binary.LittleEndian.PutUint64(b, uint64(len(s.words)))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(b[(i+1)*8:], w)
	}
	binary.LittleEndian.PutUint64(b[(len(s.words)+1)*8:], s.digest)
	return b, nil
}

// DecodeSnapshot parses the stable binary form and re-verifies the integrity
// digest over the decoded words, so bytes corrupted at rest surface as
// ErrCheckpointCorrupt instead of as silently wrong memory contents. On
// success the snapshot is sealed and accepted by Restore.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	if len(b) < 16 || len(b)%8 != 0 {
		return Snapshot{}, fmt.Errorf("memsim: DecodeSnapshot: %d bytes: %w", len(b), ErrCheckpointCorrupt)
	}
	n := binary.LittleEndian.Uint64(b)
	if n != uint64(len(b)/8-2) {
		return Snapshot{}, fmt.Errorf("memsim: DecodeSnapshot: word count %d in %d bytes: %w",
			n, len(b), ErrCheckpointCorrupt)
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(b[(i+1)*8:])
	}
	s := Snapshot{
		words:  words,
		digest: binary.LittleEndian.Uint64(b[(len(words)+1)*8:]),
		sealed: true,
	}
	if err := s.Verify(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// Snapshot returns a sealed copy of the memory contents, for epoch
// checkpointing. Access counters and hooks are not part of the snapshot: a
// restore rewinds the protected data, not the accounting of work already
// performed.
func (m *Memory) Snapshot() Snapshot {
	words := append([]uint64(nil), m.words...)
	return Snapshot{words: words, digest: digestWords(words), sealed: true}
}

// Restore overwrites the memory contents with a snapshot taken earlier,
// after verifying its integrity digest; a snapshot hit by a fault while
// parked is refused with an error wrapping ErrCheckpointCorrupt. The
// snapshot must be no larger than the current memory (allocations made since
// the snapshot keep their contents).
func (m *Memory) Restore(snap Snapshot) error {
	if err := snap.Verify(); err != nil {
		return err
	}
	return m.RestoreUnchecked(snap)
}

// RestoreUnchecked restores a snapshot without verifying its digest. It is
// the unhardened baseline for fault-injection experiments that measure what
// checkpoint verification buys; production callers should use Restore.
func (m *Memory) RestoreUnchecked(snap Snapshot) error {
	if len(snap.words) > len(m.words) {
		return fmt.Errorf("memsim: restore of %d words into %d", len(snap.words), len(m.words))
	}
	copy(m.words, snap.words)
	return nil
}

// SharedView returns a Memory that aliases m's word storage but carries its
// own access counters and no hooks. Parallel workers each take a view: loads
// and stores of disjoint addresses race only on the counters, which the view
// keeps private (fold them back with AbsorbCounters). The view is valid only
// while the underlying memory is not grown — an Alloc that reallocates the
// word slice would leave the view aliasing the old storage.
func (m *Memory) SharedView() *Memory {
	return &Memory{words: m.words}
}

// AbsorbCounters folds a view's access counters back into m and zeroes them
// on the view, so per-worker memory traffic is accounted exactly once.
func (m *Memory) AbsorbCounters(v *Memory) {
	m.loads += v.loads
	m.stores += v.stores
	v.loads, v.stores = 0, 0
}

// SetLoadHook installs (or clears, with nil) the load observation hook.
func (m *Memory) SetLoadHook(h func(addr int, raw uint64) uint64) { m.loadHook = h }

// SetFaultHook installs (or clears, with nil) the fault observation hook
// invoked after every FlipBit.
func (m *Memory) SetFaultHook(h func(addr, bit int)) { m.faultHook = h }

// SetRedirect installs (or clears, with nil) the address-fault hook: every
// Load/Store passes its intended address through h and touches the address
// h returns. Harnesses model wrong-address and aliasing faults with it; a
// hook that returns its argument is a (slower) identity.
func (m *Memory) SetRedirect(h func(store bool, addr int) int) { m.redirect = h }

// SetAccessHook installs (or clears, with nil) the address-stream observer,
// invoked on every Load/Store with the intended and effective addresses.
func (m *Memory) SetAccessHook(h func(store bool, intent, effective int)) { m.accessHook = h }

// Loads returns the number of Load calls.
func (m *Memory) Loads() uint64 { return m.loads }

// Stores returns the number of Store calls.
func (m *Memory) Stores() uint64 { return m.stores }

// ResetCounters zeroes the access counters.
func (m *Memory) ResetCounters() { m.loads, m.stores = 0, 0 }

// Zero clears every word and the access counters, returning the memory to
// its freshly allocated state (the layout — capacity and any regions handed
// out — is preserved). Pooled machines use it between requests so one
// request's data can never leak into the next.
func (m *Memory) Zero() {
	for i := range m.words {
		m.words[i] = 0
	}
	m.loads, m.stores = 0, 0
}

// Region is an allocated range of words.
type Region struct {
	Base, Size int
}

// Allocator hands out disjoint regions from a Memory.
type Allocator struct {
	mem  *Memory
	next int
}

// NewAllocator returns an allocator over m starting at word 0.
func NewAllocator(m *Memory) *Allocator { return &Allocator{mem: m} }

// Alloc reserves size words, growing the memory if needed.
func (a *Allocator) Alloc(size int) Region {
	if size < 0 {
		panic("memsim: negative allocation")
	}
	if a.next+size > len(a.mem.words) {
		grown := make([]uint64, a.next+size)
		copy(grown, a.mem.words)
		a.mem.words = grown
	}
	r := Region{Base: a.next, Size: size}
	a.next += size
	return r
}

// Used returns the number of words allocated so far.
func (a *Allocator) Used() int { return a.next }
