package rt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements epoch-scoped verification. The paper places the
// def == use comparison at a post-dominator of all defs and uses (program
// end), so a fault injected early is detected arbitrarily late. Epochs bound
// that detection window: the instrumented program brackets an iteration block
// with BeginEpoch/EndEpoch, finalizing its live tracked variables at the
// boundary so the checksums are quiescent there, and EndEpoch verifies them.
// A detected mismatch can then be repaired by rolling the protected state
// back to the sealed snapshot taken at the epoch's entry and re-executing
// only that epoch (see internal/recovery).

// ErrCheckpointCorrupt reports that a sealed checkpoint failed its integrity
// digest: a fault struck the checkpoint itself while it sat in memory waiting
// to be needed. Restoring it would replace live state with silently wrong
// state, so Rollback refuses; recovery escalates to a full restart instead.
var ErrCheckpointCorrupt = errors.New("checkpoint integrity digest mismatch")

// EpochState is a sealed snapshot of a Tracker at an epoch boundary: the
// four checksum accumulators plus the cumulative dynamic def/use operation
// counters, covered by an integrity digest computed at seal time. It is
// immutable once returned; Rollback accepts only sealed snapshots whose
// digest still verifies, so neither a zero EpochState nor a checkpoint hit
// by a fault while parked in memory can silently wipe a tracker.
type EpochState struct {
	// Index is the epoch this snapshot belongs to: for BeginEpoch the epoch
	// being entered, for EndEpoch the epoch just closed.
	Index int
	// Def, Use, EDef, EUse are the checksum accumulators at snapshot time.
	Def, Use, EDef, EUse uint64
	// Defs and Uses are the cumulative dynamic def/use operation counts.
	Defs, Uses uint64
	// Shadow holds the raw (encoded) shadow copies of the four accumulators,
	// indexed by checksum.Acc, captured exactly as they were at seal time.
	// Restoring them verbatim (rather than resealing from the primaries)
	// means a primary/shadow divergence — detector-fault evidence — survives
	// a checkpoint round trip, including across a process restart.
	Shadow [4]uint64

	sealed bool
	digest uint64
}

// Sealed reports whether the snapshot was produced by BeginEpoch/EndEpoch.
func (s EpochState) Sealed() bool { return s.sealed }

// mix64 is the splitmix64 finalizer: a cheap bijective bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// computeDigest chains every covered field through the mixer. Chaining makes
// the digest order-sensitive, so swapping two accumulators is caught too.
func (s *EpochState) computeDigest() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range [...]uint64{
		uint64(s.Index), s.Def, s.Use, s.EDef, s.EUse, s.Defs, s.Uses,
		s.Shadow[0], s.Shadow[1], s.Shadow[2], s.Shadow[3],
	} {
		h = mix64(h ^ w)
	}
	return h
}

// Verify checks the snapshot's integrity: it must be sealed and its fields
// must still match the digest computed when it was sealed. A digest failure
// is reported as ErrCheckpointCorrupt (wrapped).
func (s EpochState) Verify() error {
	if !s.sealed {
		return errors.New("unsealed EpochState")
	}
	if s.digest != s.computeDigest() {
		return fmt.Errorf("epoch %d snapshot: %w", s.Index, ErrCheckpointCorrupt)
	}
	return nil
}

// EncodedEpochStateSize is the length of an EpochState's stable binary form:
// twelve little-endian uint64 words (index, four accumulators, two operation
// counters, four shadow words, digest).
const EncodedEpochStateSize = 12 * 8

// Encode renders a sealed snapshot in its stable binary form, digest last.
// The layout is versioned implicitly by the WAL file magic; the digest both
// authenticates the decoded fields and pins the field order.
func (s EpochState) Encode() ([]byte, error) {
	if !s.sealed {
		return nil, errors.New("rt: Encode of an unsealed EpochState")
	}
	b := make([]byte, EncodedEpochStateSize)
	for i, w := range [...]uint64{
		uint64(s.Index), s.Def, s.Use, s.EDef, s.EUse, s.Defs, s.Uses,
		s.Shadow[0], s.Shadow[1], s.Shadow[2], s.Shadow[3], s.digest,
	} {
		binary.LittleEndian.PutUint64(b[i*8:], w)
	}
	return b, nil
}

// DecodeEpochState parses the stable binary form and re-verifies the
// integrity digest against the decoded fields, so corruption of the bytes at
// rest (on disk, in a WAL frame that passed its CRC by coincidence) surfaces
// as ErrCheckpointCorrupt rather than as silently wrong tracker state. On
// success the snapshot is sealed and accepted by Resume/Rollback.
func DecodeEpochState(b []byte) (EpochState, error) {
	if len(b) != EncodedEpochStateSize {
		return EpochState{}, fmt.Errorf("rt: DecodeEpochState: %d bytes, want %d: %w",
			len(b), EncodedEpochStateSize, ErrCheckpointCorrupt)
	}
	w := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	s := EpochState{
		Index: int(int64(w(0))),
		Def:   w(1), Use: w(2), EDef: w(3), EUse: w(4),
		Defs: w(5), Uses: w(6),
		Shadow: [4]uint64{w(7), w(8), w(9), w(10)},
		sealed: true,
		digest: w(11),
	}
	if err := s.Verify(); err != nil {
		return EpochState{}, err
	}
	return s, nil
}

// snapshot captures the tracker's current state as a sealed EpochState.
func (t *Tracker) snapshot() EpochState {
	s := EpochState{
		Index: t.epoch,
		Def:   t.pair.Def, Use: t.pair.Use,
		EDef: t.pair.EDef, EUse: t.pair.EUse,
		Defs: t.defs, Uses: t.uses,
		Shadow: t.pair.Shadows(),
		sealed: true,
	}
	s.digest = s.computeDigest()
	return s
}

// Epoch returns the index of the epoch currently being accumulated. It
// starts at 0 and advances on every successful EndEpoch.
func (t *Tracker) Epoch() int { return t.epoch }

// OpCounts returns the cumulative dynamic def and use operation counts.
func (t *Tracker) OpCounts() (defs, uses uint64) { return t.defs, t.uses }

// BeginEpoch seals and returns a snapshot of the tracker at the entry of the
// current epoch. A recovery supervisor pairs it with a checkpoint of the
// protected memory: on an EndEpoch mismatch, Rollback plus a memory restore
// rewinds exactly one epoch for re-execution.
func (t *Tracker) BeginEpoch() EpochState { return t.snapshot() }

// EndEpoch verifies the checksums at an epoch boundary and seals the closing
// snapshot. The caller must have finalized (Final) every live dynamically
// counted variable first so the accumulators are quiescent — that finalize-
// at-the-boundary discipline is what preserves the paper's detection
// guarantee at epoch granularity. On a clean verification the epoch index
// advances; on a mismatch it does not, so a rolled-back re-execution closes
// the same epoch.
func (t *Tracker) EndEpoch() (EpochState, error) {
	err := t.Verify()
	s := t.snapshot()
	if err == nil {
		t.epoch++
	}
	return s, err
}

// Rollback restores the tracker to a sealed snapshot (checksums, dynamic
// operation counters, and epoch index), undoing every def/use recorded since
// it was taken and clearing any latched detector fault. It rejects unsealed
// snapshots, and refuses (with an error wrapping ErrCheckpointCorrupt) a
// snapshot whose integrity digest no longer matches its fields — restoring a
// corrupted checkpoint would be worse than the fault it repairs.
func (t *Tracker) Rollback(s EpochState) error {
	if err := s.Verify(); err != nil {
		return fmt.Errorf("rt: Rollback: %w", err)
	}
	t.restore(s)
	return nil
}

// RollbackUnchecked restores a sealed snapshot without verifying its
// integrity digest. It exists as the unhardened baseline for fault-injection
// experiments that measure what the digest buys; production callers should
// use Rollback.
func (t *Tracker) RollbackUnchecked(s EpochState) error {
	if !s.sealed {
		return fmt.Errorf("rt: Rollback of an unsealed EpochState")
	}
	t.restore(s)
	return nil
}

func (t *Tracker) restore(s EpochState) {
	// Install the shadow copies exactly as sealed rather than resealing from
	// the primaries: a consistent snapshot restores to a consistent pair
	// either way, but a divergence captured at seal time (detector-fault
	// evidence) must survive the round trip — resealing would launder it.
	t.pair.SetState(s.Def, s.Use, s.EDef, s.EUse, s.Shadow)
	t.defs, t.uses = s.Defs, s.Uses
	t.epoch = s.Index
	t.latched = nil
}

// Resume is Rollback for a snapshot that crossed a process boundary: it
// verifies the snapshot's integrity digest and installs it as the tracker's
// state (checksums, exact shadow copies, operation counters, epoch index).
// It is the entry point the durable supervisor uses after DecodeEpochState.
func (t *Tracker) Resume(s EpochState) error {
	if err := s.Verify(); err != nil {
		return fmt.Errorf("rt: Resume: %w", err)
	}
	t.restore(s)
	return nil
}
