package poly

import (
	"fmt"
	"strings"
)

// BasicMap is a conjunction of affine constraints relating an input tuple to
// an output tuple (the paper's dependence relations, e.g.
// { S1[j] -> S2[j,i] : 0 <= j <= n-1 and j+1 <= i <= n-1 }).
// Input and output dimension names must be distinct from each other; any
// other variable in the constraints is a parameter.
type BasicMap struct {
	InTuple  string
	OutTuple string
	In       []string
	Out      []string
	Cons     []Constraint
}

// NewBasicMap returns an unconstrained basic map between the given tuples.
func NewBasicMap(inTuple string, in []string, outTuple string, out []string) BasicMap {
	for _, i := range in {
		for _, o := range out {
			if i == o {
				panic(fmt.Sprintf("poly: input dim %q collides with output dim", i))
			}
		}
	}
	return BasicMap{
		InTuple: inTuple, OutTuple: outTuple,
		In:  append([]string(nil), in...),
		Out: append([]string(nil), out...),
	}
}

// Copy returns a deep copy.
func (m BasicMap) Copy() BasicMap {
	return BasicMap{
		InTuple: m.InTuple, OutTuple: m.OutTuple,
		In:   append([]string(nil), m.In...),
		Out:  append([]string(nil), m.Out...),
		Cons: append([]Constraint(nil), m.Cons...),
	}
}

// With returns m extended with additional constraints.
func (m BasicMap) With(cs ...Constraint) BasicMap {
	nm := m.Copy()
	nm.Cons = append(nm.Cons, cs...)
	return nm
}

// Rename returns m with all dimension variables renamed through r.
func (m BasicMap) Rename(r map[string]string) BasicMap {
	nm := m.Copy()
	for i, d := range nm.In {
		if nd, ok := r[d]; ok {
			nm.In[i] = nd
		}
	}
	for i, d := range nm.Out {
		if nd, ok := r[d]; ok {
			nm.Out[i] = nd
		}
	}
	for i, c := range nm.Cons {
		nm.Cons[i] = c.Rename(r)
	}
	return nm
}

// freshCounter generates collision-free internal variable names.
var freshCounter int

func fresh(prefix string) string {
	freshCounter++
	return fmt.Sprintf("%s$%d", prefix, freshCounter)
}

// Apply computes the image of the basic set under the map: the set of output
// points related to some input point of s. s must have the same
// dimensionality as the map's input tuple. The exact flag reports whether the
// required projection was exact over the integers.
func (m BasicMap) Apply(s BasicSet) (BasicSet, bool) {
	if len(s.Dims) != len(m.In) {
		panic(fmt.Sprintf("poly: Apply arity mismatch: set %v vs map input %v", s.Dims, m.In))
	}
	// Rename the map's input dims to fresh names to avoid any collision with
	// set parameter names, then rename the set's dims to those fresh names.
	rm := map[string]string{}
	freshIn := make([]string, len(m.In))
	for i, d := range m.In {
		freshIn[i] = fresh(d)
		rm[d] = freshIn[i]
	}
	mm := m.Rename(rm)
	rs := map[string]string{}
	for i, d := range s.Dims {
		rs[d] = freshIn[i]
	}
	ss := s.Rename(rs)

	cons := append(append([]Constraint(nil), mm.Cons...), ss.Cons...)
	projected, exact, inf := project(cons, freshIn)
	out := BasicSet{Tuple: m.OutTuple, Dims: append([]string(nil), mm.Out...), Cons: projected}
	if inf {
		out.Cons = []Constraint{GeZero(L(-1))}
	}
	return out, exact
}

// Reverse swaps the input and output tuples.
func (m BasicMap) Reverse() BasicMap {
	return BasicMap{
		InTuple: m.OutTuple, OutTuple: m.InTuple,
		In:   append([]string(nil), m.Out...),
		Out:  append([]string(nil), m.In...),
		Cons: append([]Constraint(nil), m.Cons...),
	}
}

// Domain projects the map onto its input tuple.
func (m BasicMap) Domain() (BasicSet, bool) {
	cons, exact, inf := project(m.Cons, m.Out)
	b := BasicSet{Tuple: m.InTuple, Dims: append([]string(nil), m.In...), Cons: cons}
	if inf {
		b.Cons = []Constraint{GeZero(L(-1))}
	}
	return b, exact
}

// Range projects the map onto its output tuple.
func (m BasicMap) Range() (BasicSet, bool) {
	cons, exact, inf := project(m.Cons, m.In)
	b := BasicSet{Tuple: m.OutTuple, Dims: append([]string(nil), m.Out...), Cons: cons}
	if inf {
		b.Cons = []Constraint{GeZero(L(-1))}
	}
	return b, exact
}

// Wrap flattens the map into a basic set over the concatenated in+out dims,
// tagged with "InTuple->OutTuple". Subtraction and emptiness on relations go
// through their wrapped form.
func (m BasicMap) Wrap() BasicSet {
	return BasicSet{
		Tuple: m.InTuple + "->" + m.OutTuple,
		Dims:  append(append([]string(nil), m.In...), m.Out...),
		Cons:  append([]Constraint(nil), m.Cons...),
	}
}

// UnwrapInto reinterprets a wrapped basic set as a basic map with the given
// tuple structure (lengths must add up).
func UnwrapInto(b BasicSet, m BasicMap) BasicMap {
	if len(b.Dims) != len(m.In)+len(m.Out) {
		panic("poly: UnwrapInto arity mismatch")
	}
	r := map[string]string{}
	for i, d := range b.Dims {
		if i < len(m.In) {
			r[d] = m.In[i]
		} else {
			r[d] = m.Out[i-len(m.In)]
		}
	}
	rb := b.Rename(r)
	nm := m.Copy()
	nm.Cons = rb.Cons
	return nm
}

// IsEmpty decides integer emptiness of the relation.
func (m BasicMap) IsEmpty() (empty, exact bool) { return emptiness(m.Cons) }

// ContainsPair reports whether the relation holds for the given assignment of
// input/output dims and parameters.
func (m BasicMap) ContainsPair(env map[string]int64) bool {
	for _, c := range m.Cons {
		ok, complete := c.Holds(env)
		if !ok || !complete {
			return false
		}
	}
	return true
}

// String renders the basic map ISL-style.
func (m BasicMap) String() string {
	var cs []string
	for _, c := range m.Cons {
		cs = append(cs, c.String())
	}
	head := fmt.Sprintf("%s[%s] -> %s[%s]",
		m.InTuple, strings.Join(m.In, ","), m.OutTuple, strings.Join(m.Out, ","))
	if len(cs) == 0 {
		return "{ " + head + " }"
	}
	return "{ " + head + " : " + strings.Join(cs, " and ") + " }"
}

// Map is a union of basic maps (possibly relating different statement pairs,
// as a program's full flow-dependence relation does).
type Map struct {
	Pieces []BasicMap
}

// UnionMap builds a map from basic maps.
func UnionMap(ms ...BasicMap) Map {
	return Map{Pieces: append([]BasicMap(nil), ms...)}
}

// Apply computes the image of a set under every piece whose input tuple
// matches the set's tuple name and arity.
func (m Map) Apply(s Set) (Set, bool) {
	var out []BasicSet
	exact := true
	for _, bm := range m.Pieces {
		for _, bs := range s.Pieces {
			if bm.InTuple != bs.Tuple || len(bm.In) != len(bs.Dims) {
				continue
			}
			img, ex := bm.Apply(bs)
			exact = exact && ex
			if e, _ := img.IsEmpty(); !e {
				out = append(out, img.Simplified())
			}
		}
	}
	return Set{Pieces: out}, exact
}

// IsEmpty reports whether every piece is empty.
func (m Map) IsEmpty() (empty, exact bool) {
	empty, exact = true, true
	for _, p := range m.Pieces {
		e, ex := p.IsEmpty()
		exact = exact && ex
		if !e {
			empty = false
		}
	}
	return empty, exact
}

// Union merges two maps.
func (m Map) Union(o Map) Map {
	return Map{Pieces: append(append([]BasicMap(nil), m.Pieces...), o.Pieces...)}
}

// String renders the union.
func (m Map) String() string {
	if len(m.Pieces) == 0 {
		return "{ }"
	}
	parts := make([]string, len(m.Pieces))
	for i, b := range m.Pieces {
		str := b.String()
		parts[i] = strings.TrimSuffix(strings.TrimPrefix(str, "{ "), " }")
	}
	return "{ " + strings.Join(parts, "; ") + " }"
}
