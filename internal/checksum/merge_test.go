package checksum

import (
	"math/rand"
	"testing"
)

// Merge is the concurrency primitive underneath rt.ShardedTracker and the
// interpreter's parallel executor: combining two Pairs must be exactly the
// fold that would have happened had every update landed on one Pair, shadows
// included, and any pre-merge divergence between a primary and its shadow
// must survive the merge (a detector fault may not be laundered away).

func TestMergeEquivalentToSingleFold(t *testing.T) {
	for _, k := range []Kind{ModAdd, XOR, OnesComp} {
		whole := NewPair(k)
		exercise(whole, rand.New(rand.NewSource(7)))
		exercise(whole, rand.New(rand.NewSource(8)))

		left, right := NewPair(k), NewPair(k)
		exercise(left, rand.New(rand.NewSource(7)))
		exercise(right, rand.New(rand.NewSource(8)))
		left.Merge(right)

		if left.Def != whole.Def || left.Use != whole.Use || left.EDef != whole.EDef || left.EUse != whole.EUse {
			t.Errorf("%v: merged accumulators differ from single-fold", k)
		}
		if left.Shadows() != whole.Shadows() {
			t.Errorf("%v: merged shadows differ from single-fold", k)
		}
		if err := left.Scrub(); err != nil {
			t.Errorf("%v: merged pair fails scrub: %v", k, err)
		}
	}
}

func TestMergeCommutes(t *testing.T) {
	for _, k := range []Kind{ModAdd, XOR, OnesComp} {
		a1, b1 := NewPair(k), NewPair(k)
		exercise(a1, rand.New(rand.NewSource(17)))
		exercise(b1, rand.New(rand.NewSource(18)))
		a2, b2 := NewPair(k), NewPair(k)
		exercise(a2, rand.New(rand.NewSource(17)))
		exercise(b2, rand.New(rand.NewSource(18)))

		a1.Merge(b1) // a ∪ b
		b2.Merge(a2) // b ∪ a
		if a1.Def != b2.Def || a1.Use != b2.Use || a1.EDef != b2.EDef || a1.EUse != b2.EUse ||
			a1.Shadows() != b2.Shadows() {
			t.Errorf("%v: Merge is not commutative", k)
		}
	}
}

// TestMergePreservesShadowDivergence corrupts one operand's primary (its
// shadow still encodes the true history) before the merge. If Merge combined
// primaries and then resealed shadows from them, the divergence would vanish
// and the detector fault would go undetected; decode-combine-re-encode keeps
// both lineages independent, so the merged pair still fails its scrub.
func TestMergePreservesShadowDivergence(t *testing.T) {
	for _, k := range []Kind{ModAdd, XOR, OnesComp} {
		for a := AccDef; a <= AccEUse; a++ {
			p, q := NewPair(k), NewPair(k)
			exercise(p, rand.New(rand.NewSource(29)))
			exercise(q, rand.New(rand.NewSource(30)))
			q.CorruptPrimary(a, 17)
			p.Merge(q)
			if err := p.Scrub(); err == nil {
				t.Errorf("%v/%v: scrub clean after merging a corrupted operand", k, a)
			}
			// The divergence must sit exactly on the corrupted accumulator.
			clean, dirty := NewPair(k), NewPair(k)
			exercise(clean, rand.New(rand.NewSource(29)))
			exercise(dirty, rand.New(rand.NewSource(30)))
			clean.Merge(dirty)
			if err := clean.Scrub(); err != nil {
				t.Fatalf("%v/%v: control merge fails scrub: %v", k, a, err)
			}
		}
	}
}

func TestMergeKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge across kinds did not panic")
		}
	}()
	NewPair(ModAdd).Merge(NewPair(XOR))
}
