package checksum

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// exercise runs a representative mixed sequence of updates — known-count
// defs, uses, dynamic defs, epilogue adjustments, and named folds — so the
// shadow copies see every update path.
func exercise(p *Pair, r *rand.Rand) {
	for i := 0; i < 50; i++ {
		v := r.Uint64()
		switch i % 5 {
		case 0:
			p.AddDef(v, int64(r.Intn(4)+1))
		case 1:
			p.AddUse(v)
		case 2:
			p.AddEDef(v)
		case 3:
			p.Adjust(v, int64(r.Intn(3)+1))
		case 4:
			p.ScaleFold(Acc(r.Intn(4)), v, int64(r.Intn(3)+1))
		}
	}
}

func TestShadowEncodingRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for a := AccDef; a <= AccEUse; a++ {
		for _, v := range []uint64{0, 1, ^uint64(0), r.Uint64(), r.Uint64()} {
			if got := decShadow(encShadow(v, a), a); got != v {
				t.Fatalf("%v: decShadow(encShadow(%#x)) = %#x", a, v, got)
			}
		}
	}
}

func TestShadowEncodingDiffersFromPrimary(t *testing.T) {
	// The encodings must not be the identity anywhere obvious: a fault model
	// that clears both words to zero must leave the copies inconsistent.
	for a := AccDef; a <= AccEUse; a++ {
		if decShadow(0, a) == 0 {
			t.Errorf("%v: a zeroed shadow decodes to a zeroed primary; whole-word clears would be invisible", a)
		}
	}
}

func TestScrubCleanAcrossOpsAndKinds(t *testing.T) {
	for _, k := range []Kind{ModAdd, XOR, OnesComp} {
		p := NewPair(k)
		if err := p.Scrub(); err != nil {
			t.Fatalf("%v: fresh pair scrub: %v", k, err)
		}
		r := rand.New(rand.NewSource(int64(k) + 7))
		for i := 0; i < 20; i++ {
			exercise(p, r)
			if err := p.Scrub(); err != nil {
				t.Fatalf("%v: scrub after clean updates: %v", k, err)
			}
		}
	}
}

func TestScrubDetectsCorruptPrimary(t *testing.T) {
	for a := AccDef; a <= AccEUse; a++ {
		for _, bit := range []uint{0, 17, 63} {
			p := NewPair(ModAdd)
			exercise(p, rand.New(rand.NewSource(int64(a)*64+int64(bit))))
			p.CorruptPrimary(a, bit)
			err := p.Scrub()
			if err == nil {
				t.Fatalf("%v bit %d: corrupt primary passed scrub", a, bit)
			}
			var se *ScrubError
			if !errors.As(err, &se) {
				t.Fatalf("%v: scrub error type %T", a, err)
			}
			if se.Acc != a {
				t.Errorf("scrub blamed %v, corrupted %v", se.Acc, a)
			}
			if se.Primary == se.Shadow {
				t.Errorf("%v: ScrubError carries equal copies %#x", a, se.Primary)
			}
		}
	}
}

func TestScrubDetectsCorruptShadow(t *testing.T) {
	// The cross-check is symmetric: a fault striking the shadow word instead
	// of the primary diverges the copies just the same.
	p := NewPair(ModAdd)
	exercise(p, rand.New(rand.NewSource(3)))
	p.shadow[AccUse] ^= 1 << 40
	var se *ScrubError
	if err := p.Scrub(); !errors.As(err, &se) || se.Acc != AccUse {
		t.Fatalf("scrub = %v, want ScrubError on use", err)
	}
}

func TestScrubSurvivesVerifyMismatch(t *testing.T) {
	// A data fault makes Verify fail but must leave Scrub clean: the two
	// checks separate "the data is wrong" from "the detector is wrong".
	p := NewPair(ModAdd)
	p.AddDef(42, 1)
	p.AddUse(43) // corrupted use observation
	if err := p.Verify(); err == nil {
		t.Fatal("mismatched pair verified clean")
	}
	if err := p.Scrub(); err != nil {
		t.Fatalf("data fault tripped the detector self-check: %v", err)
	}
}

func TestSetAccumulatorsReseals(t *testing.T) {
	p := NewPair(XOR)
	exercise(p, rand.New(rand.NewSource(11)))
	p.CorruptPrimary(AccEDef, 5)
	p.SetAccumulators(1, 2, 3, 4)
	if p.Def != 1 || p.Use != 2 || p.EDef != 3 || p.EUse != 4 {
		t.Fatalf("SetAccumulators wrote %#x/%#x/%#x/%#x", p.Def, p.Use, p.EDef, p.EUse)
	}
	if err := p.Scrub(); err != nil {
		t.Fatalf("restore did not reseal shadows: %v", err)
	}
}

func TestResetReseals(t *testing.T) {
	p := NewPair(OnesComp)
	exercise(p, rand.New(rand.NewSource(13)))
	p.CorruptPrimary(AccDef, 60)
	p.Reset()
	if err := p.Scrub(); err != nil {
		t.Fatalf("Reset did not reseal shadows: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("reset pair failed verify: %v", err)
	}
}

func TestScaleFoldMatchesNamedOps(t *testing.T) {
	// ScaleFold(AccDef, v, n) must be exactly AddDef(v, n), shadows included.
	a := NewPair(ModAdd)
	b := NewPair(ModAdd)
	a.AddDef(99, 3)
	a.AddUse(7)
	b.ScaleFold(AccDef, 99, 3)
	b.ScaleFold(AccUse, 7, 1)
	if *a != *b {
		t.Fatalf("ScaleFold diverged from named ops: %+v vs %+v", a, b)
	}
	if err := b.Scrub(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubErrorMessage(t *testing.T) {
	e := &ScrubError{Acc: AccEUse, Primary: 0x10, Shadow: 0x20}
	msg := e.Error()
	for _, want := range []string{"e_use", "0x10", "0x20", "detector fault"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
