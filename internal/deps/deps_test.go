package deps

import (
	"fmt"
	"sort"
	"testing"

	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/poly"
)

func model(t *testing.T, src string) *pdg.Model {
	t.Helper()
	m, err := pdg.Extract(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const choleskySrc = `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

func TestCholeskyFlowMatchesPaper(t *testing.T) {
	m := model(t, choleskySrc)
	f := Analyze(m)
	if !f.Exact {
		t.Error("cholesky analysis should be exact")
	}
	s1, s2 := m.Statement("S1"), m.Statement("S2")
	from1 := f.From(s1)
	if len(from1) != 1 {
		t.Fatalf("S1 has %d outgoing deps, want 1 (to S2's A[j][j] read): %v", len(from1), from1)
	}
	d := from1[0]
	if d.Dst != s2 {
		t.Fatalf("S1 dep goes to %s", d.Dst.ID)
	}
	// The paper's D_flow: { S1[j] -> S2[j,i] : 0<=j<=n-1 and j+1<=i<=n-1 }.
	for _, tc := range []struct {
		j, j2, i2, n int64
		want         bool
	}{
		{0, 0, 1, 4, true},
		{0, 0, 3, 4, true},
		{1, 1, 2, 4, true},
		{0, 1, 2, 4, false}, // different j
		{0, 0, 0, 4, false}, // i < j+1
		{3, 3, 4, 4, false}, // i out of bounds
	} {
		got := relContains(d.Rel, map[string]int64{"j": tc.j, "j'": tc.j2, "i'": tc.i2, "n": tc.n})
		if got != tc.want {
			t.Errorf("S1[%d]->S2[%d,%d] n=%d: %v, want %v", tc.j, tc.j2, tc.i2, tc.n, got, tc.want)
		}
	}
	// S2 writes strictly-below-diagonal cells that are never read again.
	if len(f.From(s2)) != 0 {
		t.Errorf("S2 should have no outgoing flow deps, got %v", f.From(s2))
	}
}

func relContains(m poly.Map, env map[string]int64) bool {
	for _, bm := range m.Pieces {
		if bm.ContainsPair(env) {
			return true
		}
	}
	return false
}

// instance is one dynamic statement instance.
type instance struct {
	stmt *pdg.Statement
	env  map[string]int64 // iterator values
	key  []int64          // schedule vector value
}

// traceFlow executes the affine model literally (enumerate instances in
// schedule order, track last writer per cell) and returns the exact flow
// pairs as strings "src[i..] -> dst[j..] #read".
func traceFlow(t *testing.T, m *pdg.Model, params map[string]int64) map[string]bool {
	t.Helper()
	var insts []instance
	for _, s := range m.Stmts {
		if !s.ControlAffine {
			t.Fatal("traceFlow needs a fully control-affine model")
		}
		for _, pt := range s.Domain.EnumeratePoints(params, 64) {
			env := map[string]int64{}
			for k, v := range params {
				env[k] = v
			}
			for k, v := range pt {
				env[k] = v
			}
			key := make([]int64, len(s.Schedule))
			for k, term := range s.Schedule {
				if term.IsIter {
					key[k] = env[term.Iter]
				} else {
					key[k] = term.Const
				}
			}
			insts = append(insts, instance{stmt: s, env: env, key: key})
		}
	}
	sort.Slice(insts, func(a, b int) bool {
		ka, kb := insts[a].key, insts[b].key
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})

	lastWriter := map[string]*instance{}
	pairs := map[string]bool{}
	cellKey := func(array string, idx []int64) string { return fmt.Sprintf("%s%v", array, idx) }
	evalIdx := func(ins *instance, lins []poly.LinExpr) []int64 {
		out := make([]int64, len(lins))
		for k, lin := range lins {
			v, ok := lin.Eval(ins.env)
			if !ok {
				t.Fatal("unbound variable in index")
			}
			out[k] = v
		}
		return out
	}
	instKey := func(ins *instance) string {
		idx := make([]int64, len(ins.stmt.Iters))
		for k, it := range ins.stmt.Iters {
			idx[k] = ins.env[it]
		}
		return fmt.Sprintf("%s%v", ins.stmt.ID, idx)
	}
	for i := range insts {
		ins := &insts[i]
		for ri := range ins.stmt.Reads {
			read := &ins.stmt.Reads[ri]
			if !read.Affine {
				continue
			}
			cell := cellKey(read.Array, evalIdx(ins, read.Index))
			if w := lastWriter[cell]; w != nil {
				pairs[fmt.Sprintf("%s -> %s #%d", instKey(w), instKey(ins), ri)] = true
			}
		}
		if ins.stmt.Write.Affine {
			cell := cellKey(ins.stmt.Write.Array, evalIdx(ins, ins.stmt.Write.Index))
			lastWriter[cell] = ins
		}
	}
	return pairs
}

// relFlow enumerates the pairs asserted by the analyzed dependences.
func relFlow(t *testing.T, f *Flow, params map[string]int64) map[string]bool {
	t.Helper()
	pairs := map[string]bool{}
	for _, d := range f.Deps {
		srcPts := d.Src.Domain.EnumeratePoints(params, 64)
		dstPts := d.Dst.Domain.EnumeratePoints(params, 64)
		for _, sp := range srcPts {
			for _, dp := range dstPts {
				env := map[string]int64{}
				for k, v := range params {
					env[k] = v
				}
				for k, v := range sp {
					env[k] = v
				}
				for k, v := range dp {
					env[k+"'"] = v
				}
				if relContains(d.Rel, env) {
					srcIdx := make([]int64, len(d.Src.Iters))
					for k, it := range d.Src.Iters {
						srcIdx[k] = sp[it]
					}
					dstIdx := make([]int64, len(d.Dst.Iters))
					for k, it := range d.Dst.Iters {
						dstIdx[k] = dp[it]
					}
					pairs[fmt.Sprintf("%s%v -> %s%v #%d", d.Src.ID, srcIdx, d.Dst.ID, dstIdx, d.DstRead)] = true
				}
			}
		}
	}
	return pairs
}

func comparePairs(t *testing.T, name string, traced, analyzed map[string]bool) {
	t.Helper()
	for p := range traced {
		if !analyzed[p] {
			t.Errorf("%s: traced pair missing from analysis: %s", name, p)
		}
	}
	for p := range analyzed {
		if !traced[p] {
			t.Errorf("%s: analysis asserts spurious pair: %s", name, p)
		}
	}
}

func crossValidate(t *testing.T, src string, params map[string]int64) {
	t.Helper()
	m := model(t, src)
	f := Analyze(m)
	if !f.Exact {
		t.Fatalf("analysis inexact for %s", m.Prog.Name)
	}
	comparePairs(t, m.Prog.Name, traceFlow(t, m, params), relFlow(t, f, params))
}

func TestCrossValidateCholesky(t *testing.T) {
	crossValidate(t, choleskySrc, map[string]int64{"n": 6})
}

func TestCrossValidateJacobiStyle(t *testing.T) {
	// Kills matter here: S2's write of A[i] at time t is read by S1 at time
	// t+1 only — later writes kill older ones.
	crossValidate(t, `
program jac(n, tmax)
float A[n], B[n];
for t = 0 to tmax - 1 {
  for i = 1 to n - 2 {
    S1: B[i] = A[i - 1] + A[i] + A[i + 1];
  }
  for i = 1 to n - 2 {
    S2: A[i] = B[i];
  }
}
`, map[string]int64{"n": 7, "tmax": 3})
}

func TestCrossValidateScalarAccumulation(t *testing.T) {
	// Scalars are 0-dim cells: every += reads the previous write (kill chain
	// through the same statement).
	crossValidate(t, `
program acc(n)
float s, A[n];
S0: s = 0.0;
for i = 0 to n - 1 {
  S1: s += A[i];
}
S2: A[0] = s;
`, map[string]int64{"n": 5})
}

func TestCrossValidateLU(t *testing.T) {
	crossValidate(t, `
program lu(n)
float A[n][n];
for k = 0 to n - 1 {
  for j = k + 1 to n - 1 {
    S1: A[k][j] = A[k][j] / A[k][k];
  }
  for i = k + 1 to n - 1 {
    for j = k + 1 to n - 1 {
      S2: A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}
`, map[string]int64{"n": 5})
}

func TestCrossValidateTrisolv(t *testing.T) {
	crossValidate(t, `
program trisolv(n)
float L[n][n], x[n], b[n];
for i = 0 to n - 1 {
  S1: x[i] = b[i];
  for j = 0 to i - 1 {
    S2: x[i] = x[i] - L[i][j] * x[j];
  }
  S3: x[i] = x[i] / L[i][i];
}
`, map[string]int64{"n": 5})
}

func TestCrossValidateOverwriteChain(t *testing.T) {
	// Repeated full overwrites of the same array: only the last write before
	// each read may source the dependence.
	crossValidate(t, `
program chain(n)
float A[n], s;
for i = 0 to n - 1 {
  S1: A[i] = 1.0;
}
for i = 0 to n - 1 {
  S2: A[i] = 2.0;
}
S3: s = A[0];
`, map[string]int64{"n": 4})
}

func TestDepsSkipNonAffine(t *testing.T) {
	m := model(t, `
program t(n)
float A[n], s;
int cols[n];
for i = 0 to n - 1 {
  S1: A[cols[i]] = 1.0;
}
S2: s = A[0];
`)
	f := Analyze(m)
	// S1's write is non-affine: no dependence may be asserted from it.
	for _, d := range f.Deps {
		if d.Src.ID == "S1" {
			t.Errorf("non-affine write used as dep source: %v", d)
		}
	}
}

func TestToQuery(t *testing.T) {
	m := model(t, choleskySrc)
	f := Analyze(m)
	s2 := m.Statement("S2")
	// S2's second read (A[j][j], index 1 in reads order: A[i][j] then A[j][j])
	var found bool
	for ri := range s2.Reads {
		if len(f.To(s2, ri)) > 0 {
			found = true
			if s2.Reads[ri].Ref.Indices[0].(*lang.Ref).Name != "j" {
				// The fed read must be A[j][j].
				t.Errorf("dependence feeds unexpected read #%d", ri)
			}
		}
	}
	if !found {
		t.Error("no dependence feeds any S2 read")
	}
	if f.Deps[0].String() == "" {
		t.Error("empty dep string")
	}
}
