package addrsum

import (
	"errors"
	"math/rand"
	"testing"
)

// access is one instrumented memory operation: a load or store with the
// index the program computed and the index the hardware actually touched.
type access struct {
	store             bool
	intent, effective int
}

func (a access) apply(t *Tracker) {
	if a.store {
		t.Store(a.intent, a.effective)
	} else {
		t.Load(a.intent, a.effective)
	}
}

// genClean builds a random clean access stream (effective == intent).
func genClean(rng *rand.Rand, n, words int) []access {
	ops := make([]access, n)
	for i := range ops {
		idx := rng.Intn(words)
		ops[i] = access{store: rng.Intn(2) == 0, intent: idx, effective: idx}
	}
	return ops
}

func TestCleanStreamVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := NewTracker()
	for _, op := range genClean(rng, 500, 64) {
		op.apply(tr)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("clean access stream failed verify: %v", err)
	}
	if err := tr.Scrub(); err != nil {
		t.Fatalf("clean access stream failed scrub: %v", err)
	}
	loads, stores := tr.OpCounts()
	if loads+stores != 500 {
		t.Fatalf("op counts %d+%d, want 500 total", loads, stores)
	}
}

func TestRedirectDetected(t *testing.T) {
	cases := []struct {
		name string
		op   access
		want string
	}{
		{"load", access{intent: 3, effective: 9}, "load"},
		{"store", access{store: true, intent: 5, effective: 2}, "store"},
	}
	for _, tc := range cases {
		tr := NewTracker()
		// Surround the fault with clean traffic: one redirect in an epoch of
		// otherwise well-behaved accesses must still surface.
		for i := 0; i < 32; i++ {
			tr.Load(i, i)
			tr.Store(i, i)
		}
		tc.op.apply(tr)
		err := tr.Verify()
		var mm *MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("%s redirect: verify returned %v, want *MismatchError", tc.name, err)
		}
		if mm.Op != tc.want {
			t.Errorf("%s redirect blamed the %s stream", tc.name, mm.Op)
		}
	}
}

// TestSwapDetected pins the reason Key binds (intent, effective) pairs
// instead of folding a multiset of touched addresses: two accesses that
// trade locations leave the multiset of effective indices unchanged, so an
// unbound fold would balance. The pair-bound fold must not.
func TestSwapDetected(t *testing.T) {
	tr := NewTracker()
	tr.Load(1, 2)
	tr.Load(2, 1)
	if err := tr.Verify(); err == nil {
		t.Fatal("swapped loads balanced the address fold — keys are not pair-bound")
	}
	if Key(1, 2) == Key(2, 1) {
		t.Fatal("Key is symmetric in its arguments")
	}
}

func TestScrubCatchesAccumulatorCorruption(t *testing.T) {
	for s := Stream(0); s < numStreams; s++ {
		tr := NewTracker()
		tr.Load(4, 4)
		tr.Store(4, 4)
		tr.CorruptAccumulator(s, 17)
		err := tr.Scrub()
		var se *ScrubError
		if !errors.As(err, &se) {
			t.Fatalf("stream %v: scrub returned %v, want *ScrubError", s, err)
		}
		if se.Stream != s {
			t.Errorf("stream %v: scrub blamed %v", s, se.Stream)
		}
	}
}

// TestMergePartitionInvariant: any partition of an access stream across
// trackers, merged in any order, is byte-identical to folding the stream
// sequentially — accumulators, shadows, and op counts.
func TestMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 20; round++ {
		ops := genClean(rng, 50+rng.Intn(200), 64)
		// A minority of faulty rounds: partition invariance must hold for the
		// failing verdict too.
		if round%3 == 0 {
			i := rng.Intn(len(ops))
			ops[i].effective = (ops[i].intent + 1 + rng.Intn(62)) % 64
		}
		seq := NewTracker()
		for _, op := range ops {
			op.apply(seq)
		}
		for parts := 1; parts <= 8; parts++ {
			trs := make([]*Tracker, parts)
			for i := range trs {
				trs[i] = NewTracker()
			}
			for _, op := range ops {
				op.apply(trs[rng.Intn(parts)])
			}
			root := NewTracker()
			for _, i := range rng.Perm(parts) {
				root.Merge(trs[i])
			}
			if root.Accumulators() != seq.Accumulators() {
				t.Fatalf("round %d, %d parts: accumulators %#x != sequential %#x",
					round, parts, root.Accumulators(), seq.Accumulators())
			}
			if root.Shadows() != seq.Shadows() {
				t.Fatalf("round %d, %d parts: shadows diverged from sequential", round, parts)
			}
			rl, rs := root.OpCounts()
			sl, ss := seq.OpCounts()
			if rl != sl || rs != ss {
				t.Fatalf("round %d, %d parts: op counts (%d,%d) != (%d,%d)", round, parts, rl, rs, sl, ss)
			}
			if (root.Verify() == nil) != (seq.Verify() == nil) {
				t.Fatalf("round %d, %d parts: verdict differs from sequential", round, parts)
			}
		}
	}
}

// TestMergeCarriesCorruptionEvidence: a detector fault striking one operand
// before the merge must still be visible to the merged tracker's scrub — the
// decode-combine-re-encode merge must not recompute shadows from primaries.
func TestMergeCarriesCorruptionEvidence(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	a.Load(1, 1)
	b.Store(2, 2)
	a.CorruptAccumulator(LoadSeen, 5)
	root := NewTracker()
	root.Merge(a)
	root.Merge(b)
	if err := root.Scrub(); err == nil {
		t.Fatal("accumulator corruption vanished in the merge")
	}
}

func TestEpochSealRollback(t *testing.T) {
	tr := NewTracker()
	tr.Load(0, 0)
	tr.Store(0, 0)
	start := tr.BeginEpoch()
	if err := start.Verify(); err != nil {
		t.Fatalf("freshly sealed state failed verify: %v", err)
	}

	// A redirected epoch: EndEpoch must refuse and leave state for rollback.
	tr.Load(1, 7)
	if _, err := tr.EndEpoch(); err == nil {
		t.Fatal("EndEpoch verified a redirected epoch")
	}
	if err := tr.Rollback(start); err != nil {
		t.Fatalf("rollback failed: %v", err)
	}
	// The re-executed epoch runs clean and advances.
	tr.Load(1, 1)
	end, err := tr.EndEpoch()
	if err != nil {
		t.Fatalf("re-executed epoch failed verify: %v", err)
	}
	if end.Index != start.Index+1 {
		t.Fatalf("epoch index %d after EndEpoch from %d", end.Index, start.Index)
	}

	// A tampered seal must be refused by the digest-checked rollback and
	// accepted by the vouched-for path.
	bad := end
	bad.Acc[0] ^= 1
	if err := tr.Rollback(bad); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("rollback of tampered state returned %v, want ErrCheckpointCorrupt", err)
	}
	tr.RollbackUnchecked(end)
	if tr.Epoch() != end.Index {
		t.Fatalf("unchecked rollback landed at epoch %d, want %d", tr.Epoch(), end.Index)
	}
}

func TestEpochStateEncodeRoundtrip(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 10; i++ {
		tr.Load(i, i)
		tr.Store(i, i)
	}
	st := tr.BeginEpoch()
	buf := st.Encode()
	if len(buf) != EncodedEpochStateSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), EncodedEpochStateSize)
	}
	got, err := DecodeEpochState(buf)
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if got.Acc != st.Acc || got.Shadow != st.Shadow || got.Index != st.Index ||
		got.Loads != st.Loads || got.Stores != st.Stores || got.Digest() != st.Digest() {
		t.Fatal("decoded state differs from encoded state")
	}
	// Every single-bit corruption of the encoding must be rejected.
	for byteIdx := 0; byteIdx < len(buf); byteIdx += 7 {
		mut := append([]byte(nil), buf...)
		mut[byteIdx] ^= 0x10
		if _, err := DecodeEpochState(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", byteIdx)
		}
	}
	if _, err := DecodeEpochState(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated encoding decoded successfully")
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker()
	tr.Load(3, 9) // mismatched
	tr.Reset()
	if err := tr.Verify(); err != nil {
		t.Fatalf("reset tracker failed verify: %v", err)
	}
	if err := tr.Scrub(); err != nil {
		t.Fatalf("reset tracker failed scrub: %v", err)
	}
	if l, s := tr.OpCounts(); l != 0 || s != 0 {
		t.Fatalf("reset kept op counts %d/%d", l, s)
	}
}

// FuzzAddrSum drives the merge and encode paths with fuzzer-chosen access
// streams and partitions: sequential and merged folds must agree exactly,
// and the sealed epoch state must survive an encode/decode roundtrip.
func FuzzAddrSum(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x13}, uint8(2))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x40, 0x21}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, parts uint8) {
		const words = 32
		nParts := int(parts)%8 + 1
		seq := NewTracker()
		trs := make([]*Tracker, nParts)
		for i := range trs {
			trs[i] = NewTracker()
		}
		// Each byte encodes one access: low 5 bits pick the intent index,
		// bit 5 the op, bit 6 a redirect (effective = intent+1 mod words),
		// bit 7 feeds the partition choice.
		for i, b := range raw {
			op := access{store: b&0x20 != 0, intent: int(b & 0x1f), effective: int(b & 0x1f)}
			if b&0x40 != 0 {
				op.effective = (op.intent + 1) % words
			}
			op.apply(seq)
			op.apply(trs[(i+int(b>>7))%nParts])
		}
		root := NewTracker()
		for _, tr := range trs {
			root.Merge(tr)
		}
		if root.Accumulators() != seq.Accumulators() || root.Shadows() != seq.Shadows() {
			t.Fatalf("merged state diverged from sequential over %d accesses, %d parts", len(raw), nParts)
		}
		if (root.Verify() == nil) != (seq.Verify() == nil) {
			t.Fatal("merged verdict diverged from sequential")
		}
		st := seq.BeginEpoch()
		got, err := DecodeEpochState(st.Encode())
		if err != nil {
			t.Fatalf("encode/decode roundtrip failed: %v", err)
		}
		if got.Acc != st.Acc || got.Shadow != st.Shadow || got.Loads != st.Loads || got.Stores != st.Stores {
			t.Fatal("roundtripped state differs")
		}
	})
}
