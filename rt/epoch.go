package rt

import "fmt"

// This file implements epoch-scoped verification. The paper places the
// def == use comparison at a post-dominator of all defs and uses (program
// end), so a fault injected early is detected arbitrarily late. Epochs bound
// that detection window: the instrumented program brackets an iteration block
// with BeginEpoch/EndEpoch, finalizing its live tracked variables at the
// boundary so the checksums are quiescent there, and EndEpoch verifies them.
// A detected mismatch can then be repaired by rolling the protected state
// back to the sealed snapshot taken at the epoch's entry and re-executing
// only that epoch (see internal/recovery).

// EpochState is a sealed snapshot of a Tracker at an epoch boundary: the
// four checksum accumulators plus the cumulative dynamic def/use operation
// counters. It is immutable once returned; Rollback accepts only sealed
// snapshots, so a zero EpochState cannot silently wipe a tracker.
type EpochState struct {
	// Index is the epoch this snapshot belongs to: for BeginEpoch the epoch
	// being entered, for EndEpoch the epoch just closed.
	Index int
	// Def, Use, EDef, EUse are the checksum accumulators at snapshot time.
	Def, Use, EDef, EUse uint64
	// Defs and Uses are the cumulative dynamic def/use operation counts.
	Defs, Uses uint64

	sealed bool
}

// Sealed reports whether the snapshot was produced by BeginEpoch/EndEpoch.
func (s EpochState) Sealed() bool { return s.sealed }

// snapshot captures the tracker's current state as a sealed EpochState.
func (t *Tracker) snapshot() EpochState {
	return EpochState{
		Index: t.epoch,
		Def:   t.pair.Def, Use: t.pair.Use,
		EDef: t.pair.EDef, EUse: t.pair.EUse,
		Defs: t.defs, Uses: t.uses,
		sealed: true,
	}
}

// Epoch returns the index of the epoch currently being accumulated. It
// starts at 0 and advances on every successful EndEpoch.
func (t *Tracker) Epoch() int { return t.epoch }

// OpCounts returns the cumulative dynamic def and use operation counts.
func (t *Tracker) OpCounts() (defs, uses uint64) { return t.defs, t.uses }

// BeginEpoch seals and returns a snapshot of the tracker at the entry of the
// current epoch. A recovery supervisor pairs it with a checkpoint of the
// protected memory: on an EndEpoch mismatch, Rollback plus a memory restore
// rewinds exactly one epoch for re-execution.
func (t *Tracker) BeginEpoch() EpochState { return t.snapshot() }

// EndEpoch verifies the checksums at an epoch boundary and seals the closing
// snapshot. The caller must have finalized (Final) every live dynamically
// counted variable first so the accumulators are quiescent — that finalize-
// at-the-boundary discipline is what preserves the paper's detection
// guarantee at epoch granularity. On a clean verification the epoch index
// advances; on a mismatch it does not, so a rolled-back re-execution closes
// the same epoch.
func (t *Tracker) EndEpoch() (EpochState, error) {
	err := t.Verify()
	s := t.snapshot()
	if err == nil {
		t.epoch++
	}
	return s, err
}

// Rollback restores the tracker to a sealed snapshot (checksums, dynamic
// operation counters, and epoch index), undoing every def/use recorded since
// it was taken. It rejects unsealed snapshots.
func (t *Tracker) Rollback(s EpochState) error {
	if !s.sealed {
		return fmt.Errorf("rt: Rollback of an unsealed EpochState")
	}
	t.pair.Def, t.pair.Use = s.Def, s.Use
	t.pair.EDef, t.pair.EUse = s.EDef, s.EUse
	t.defs, t.uses = s.Defs, s.Uses
	t.epoch = s.Index
	return nil
}
