package checksum

import "fmt"

// Pair holds the four global checksums of the paper's scheme: the primary
// def/use pair and the auxiliary e_def/e_use pair introduced in Section 4.1
// to catch persistent corruptions that the primary pair alone would miss.
//
// The zero Pair uses ModAdd; use NewPair to select another operator.
type Pair struct {
	kind Kind

	// Def accumulates every defined value, scaled by its use count.
	Def uint64
	// Use accumulates every consumed value once per use.
	Use uint64
	// EDef accumulates each dynamically-counted defined value once at its
	// definition site.
	EDef uint64
	// EUse accumulates, for each dynamically-counted definition, the value
	// observed after its last use (at overwrite or in the epilogue).
	EUse uint64
}

// NewPair returns a Pair using operator k. k must be commutative.
func NewPair(k Kind) *Pair {
	if !k.Commutative() {
		panic(fmt.Sprintf("checksum: operator %v cannot be used for def/use checksums", k))
	}
	return &Pair{kind: k}
}

// Kind returns the operator of the pair.
func (p *Pair) Kind() Kind { return p.kind }

// AddDef folds a defined value into the def-checksum n times, where n is the
// value's (known) use count.
func (p *Pair) AddDef(v uint64, n int64) { p.Def = ScaleCombine(p.kind, p.Def, v, n) }

// AddUse folds a consumed value into the use-checksum once.
func (p *Pair) AddUse(v uint64) { p.Use = Combine(p.kind, p.Use, v) }

// AddEDef folds a dynamically-counted defined value into both the def- and
// the auxiliary def-checksum once (Algorithm 3, unknown-use-count def site).
func (p *Pair) AddEDef(v uint64) {
	p.Def = Combine(p.kind, p.Def, v)
	p.EDef = Combine(p.kind, p.EDef, v)
}

// Adjust performs the epilogue/overwrite adjustment for a dynamically-counted
// definition whose observed current value is v and whose dynamic use count is
// n: v is folded into the def-checksum n-1 more times and into the auxiliary
// use-checksum once.
func (p *Pair) Adjust(v uint64, n int64) {
	p.Def = ScaleCombine(p.kind, p.Def, v, n-1)
	p.EUse = Combine(p.kind, p.EUse, v)
}

// Reset zeroes all four checksums.
func (p *Pair) Reset() { p.Def, p.Use, p.EDef, p.EUse = 0, 0, 0, 0 }

// MismatchError reports a checksum verification failure.
type MismatchError struct {
	Which              string // "def/use" or "e_def/e_use"
	Expected, Observed uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checksum: %s mismatch: %#x != %#x (memory error detected)",
		e.Which, e.Expected, e.Observed)
}

// Verify compares the def/use and e_def/e_use checksums. A nil return means
// no memory error was detected; a *MismatchError reports which pair differs.
func (p *Pair) Verify() error {
	if p.Def != p.Use {
		return &MismatchError{Which: "def/use", Expected: p.Def, Observed: p.Use}
	}
	if p.EDef != p.EUse {
		return &MismatchError{Which: "e_def/e_use", Expected: p.EDef, Observed: p.EUse}
	}
	return nil
}
