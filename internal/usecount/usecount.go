// Package usecount implements Algorithm 1 of the paper: compile-time
// determination of the number of uses of every definition in the affine
// fragment, as parametric piecewise polynomials. It also classifies arrays
// into statically analyzable vs dynamic (Section 5's affine/non-affine
// classification) and computes live-in use counts for the prologue.
package usecount

import (
	"fmt"

	"defuse/internal/deps"
	"defuse/internal/pdg"
	"defuse/internal/poly"
)

// ArrayClass reports whether every access to a variable is statically
// analyzable; variables failing the test are protected by the dynamic
// scheme (Section 4).
type ArrayClass struct {
	Name       string
	Analyzable bool
	Reason     string // why not analyzable
}

// DefContrib is one outgoing dependence's contribution to a definition's use
// count: at the def site, the defined value joins the def-checksum
// Count(iterators, params) times for this dependence.
type DefContrib struct {
	Dep   *deps.Dep
	Count poly.Piecewise // over the writer's iterators and program parameters
}

// DefCount aggregates all contributions for one statement's write.
type DefCount struct {
	Stmt     *pdg.Statement
	Contribs []DefContrib
}

// TotalAt evaluates the definition's total use count at a concrete iteration.
func (d *DefCount) TotalAt(env map[string]int64) (int64, error) {
	var total int64
	for _, c := range d.Contribs {
		v, _, err := c.Count.Eval(env)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// LiveInContrib is one read access's live-in cells: for the parameterized
// cell (CellVars bound to the cell coordinates), Count gives how many times
// that cell's initial value is read before being overwritten.
type LiveInContrib struct {
	Stmt     *pdg.Statement
	ReadIdx  int
	CellVars []string
	Count    poly.Piecewise
}

// Analysis is the complete static use-count information of a model.
type Analysis struct {
	Flow    *deps.Flow
	Classes map[string]*ArrayClass
	// Defs maps each analyzable writer statement to its use-count info.
	Defs map[*pdg.Statement]*DefCount
	// LiveIns lists live-in contributions per analyzable array (summed
	// additively across entries when domains overlap).
	LiveIns map[string][]LiveInContrib
}

// Analyzable reports whether the named variable is in the static fragment.
func (a *Analysis) Analyzable(name string) bool {
	c, ok := a.Classes[name]
	return ok && c.Analyzable
}

// CellVarName names the k-th parameterized cell coordinate of an array.
// The '#' makes collision with program identifiers impossible (lang
// identifiers cannot contain '#'); instrumentation renames these to fresh
// program identifiers.
func CellVarName(array string, k int) string { return fmt.Sprintf("%s#c%d", array, k) }

// Analyze runs Algorithm 1 over the flow information.
func Analyze(f *deps.Flow) *Analysis {
	a := &Analysis{
		Flow:    f,
		Classes: classify(f.Model),
		Defs:    map[*pdg.Statement]*DefCount{},
		LiveIns: map[string][]LiveInContrib{},
	}

	// Use counts per definition (Algorithm 1): with the source iteration
	// parameterized, each dependence's target set is its relation read as a
	// set over the target iterators, with the source iterators as free
	// parameters. Its cardinality is the dependence's use-count
	// contribution.
	for _, s := range f.Model.Stmts {
		if !a.Analyzable(s.Write.Array) {
			continue
		}
		dc := &DefCount{Stmt: s}
		failed := false
		for _, d := range f.From(s) {
			var all poly.Piecewise
			for _, bm := range d.Rel.Pieces {
				target := poly.BasicSet{Tuple: bm.OutTuple, Dims: bm.Out, Cons: bm.Cons}
				pw, err := poly.Card(target)
				if err != nil {
					a.markDynamic(s.Write.Array, fmt.Sprintf("use count of %s not countable: %v", s.ID, err))
					failed = true
					break
				}
				all.Pieces = append(all.Pieces, pw.Pieces...)
			}
			if failed {
				break
			}
			dc.Contribs = append(dc.Contribs, DefContrib{Dep: d, Count: all})
		}
		if !failed {
			a.Defs[s] = dc
		}
	}

	// Live-in analysis: read iterations not fed by any dependence observe
	// the array's initial values; the prologue must fold those values into
	// the def-checksum with matching counts.
	for _, s := range f.Model.Stmts {
		for ri := range s.Reads {
			read := &s.Reads[ri]
			if !a.Analyzable(read.Array) {
				continue
			}
			uncovered := a.uncoveredReads(s, ri)
			if empty, _ := uncovered.IsEmpty(); empty {
				continue
			}
			cellVars := make([]string, len(read.Index))
			for k := range cellVars {
				cellVars[k] = CellVarName(read.Array, k)
			}
			var pw poly.Piecewise
			ok := true
			for _, piece := range uncovered.Pieces {
				cons := append([]poly.Constraint(nil), piece.Cons...)
				for k, lin := range read.Index {
					cons = append(cons, poly.Eq(lin, poly.V(cellVars[k])))
				}
				set := poly.BasicSet{Tuple: s.ID, Dims: append([]string(nil), s.Iters...), Cons: cons}
				c, err := poly.Card(set)
				if err != nil {
					a.markDynamic(read.Array, fmt.Sprintf("live-in count of %s read #%d not countable: %v", s.ID, ri, err))
					ok = false
					break
				}
				pw.Pieces = append(pw.Pieces, c.Pieces...)
			}
			if ok {
				a.LiveIns[read.Array] = append(a.LiveIns[read.Array], LiveInContrib{
					Stmt: s, ReadIdx: ri, CellVars: cellVars, Count: pw,
				})
			}
		}
	}

	// A late markDynamic may have invalidated earlier results: drop def and
	// live-in info for arrays that ended up dynamic.
	for s := range a.Defs {
		if !a.Analyzable(s.Write.Array) {
			delete(a.Defs, s)
		}
	}
	for name := range a.LiveIns {
		if !a.Analyzable(name) {
			delete(a.LiveIns, name)
		}
	}
	return a
}

func (a *Analysis) markDynamic(array, reason string) {
	c := a.Classes[array]
	if c == nil {
		c = &ArrayClass{Name: array}
		a.Classes[array] = c
	}
	if c.Analyzable {
		c.Analyzable = false
		c.Reason = reason
	}
}

// uncoveredReads computes the read iterations of s's ri-th read that no flow
// dependence feeds (they observe live-in values).
func (a *Analysis) uncoveredReads(s *pdg.Statement, ri int) poly.Set {
	// Work in the dependence target space: iterators renamed with "'".
	ren := pdg.RenameSuffix(s.Iters, "'")
	dom := s.Domain.Rename(ren)
	covered := poly.Set{}
	for _, d := range a.Flow.To(s, ri) {
		for _, bm := range d.Rel.Pieces {
			rng, _ := bm.Range()
			covered.Pieces = append(covered.Pieces, rng)
		}
	}
	un := poly.UnionSet(dom).Subtract(covered)
	// Rename back to the statement's own iterator names.
	back := map[string]string{}
	for from, to := range ren {
		back[to] = from
	}
	for i := range un.Pieces {
		un.Pieces[i] = un.Pieces[i].Rename(back)
	}
	return un
}

// classify marks every declared variable analyzable unless some access to it
// is non-affine or sits under non-affine control.
func classify(m *pdg.Model) map[string]*ArrayClass {
	classes := map[string]*ArrayClass{}
	for _, d := range m.Prog.Decls {
		classes[d.Name] = &ArrayClass{Name: d.Name, Analyzable: true}
	}
	flag := func(name, reason string) {
		c := classes[name]
		if c != nil && c.Analyzable {
			c.Analyzable = false
			c.Reason = reason
		}
	}
	for _, s := range m.Stmts {
		accs := append([]pdg.Access{s.Write}, s.Reads...)
		for _, acc := range accs {
			switch {
			case !s.ControlAffine:
				flag(acc.Array, fmt.Sprintf("accessed by %s under non-affine control", s.ID))
			case !acc.Affine:
				flag(acc.Array, fmt.Sprintf("non-affine subscript in %s", s.ID))
			}
		}
	}
	// Conservatively treat variables that never appear in any modeled
	// statement but are declared as analyzable with no accesses (nothing to
	// protect).
	return classes
}
