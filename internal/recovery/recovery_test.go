package recovery

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"defuse/internal/checksum"
	"defuse/internal/memsim"
	"defuse/rt"
	"defuse/telemetry"
)

// simState is a minimal supervised computation: each epoch appends its index
// to the trace and increments a value. Faults are modeled by the tests as
// verification failures with controlled persistence.
type simState struct {
	value int
	runs  []int // every epoch execution, including re-executions
}

func mismatch() error {
	return &checksum.MismatchError{Which: "def/use", Expected: 1, Observed: 2}
}

// harness builds a Config over a simState whose Verify is supplied by the
// test. Checkpoint/Restore copy the value (runs is accounting, not state).
func harness(s *simState, epochs int, verify func(k int) error) Config {
	return Config{
		Epochs: epochs,
		Run: func(k int) error {
			s.runs = append(s.runs, k)
			s.value++
			return nil
		},
		Verify:     verify,
		Checkpoint: func() any { return s.value },
		Restore: func(snap any) error {
			s.value = snap.(int)
			return nil
		},
	}
}

func TestSuperviseCleanRun(t *testing.T) {
	s := &simState{}
	o, err := Supervise(context.Background(), harness(s, 5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if o.Detected || o.Tainted || o.Recovered {
		t.Errorf("clean run outcome = %+v", o)
	}
	if o.FirstDetection != -1 {
		t.Errorf("FirstDetection = %d, want -1", o.FirstDetection)
	}
	if s.value != 5 || len(s.runs) != 5 {
		t.Errorf("value = %d, runs = %v", s.value, s.runs)
	}
	for i, k := range s.runs {
		if k != i {
			t.Fatalf("epochs ran out of order: %v", s.runs)
		}
	}
}

func TestSuperviseTransientFaultRollsBackAndRecovers(t *testing.T) {
	// The fault corrupts epoch 2's first execution only: the retry re-executes
	// from the epoch-entry checkpoint and succeeds, so the run recovers with
	// exactly one retry, no restart, and the correct final state.
	s := &simState{}
	faulted := false
	cfg := harness(s, 5, func(k int) error {
		if k == 2 && !faulted {
			faulted = true
			return mismatch()
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 3, MaxRestarts: 1}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected || o.FirstDetection != 2 {
		t.Errorf("Detected=%v FirstDetection=%d, want detection at epoch 2", o.Detected, o.FirstDetection)
	}
	if o.Retries != 1 || o.Restarts != 0 {
		t.Errorf("Retries=%d Restarts=%d, want 1/0", o.Retries, o.Restarts)
	}
	if !o.Recovered || o.Tainted {
		t.Errorf("Recovered=%v Tainted=%v", o.Recovered, o.Tainted)
	}
	if s.value != 5 {
		t.Errorf("final value = %d, want 5 (rollback must undo the faulted epoch)", s.value)
	}
	want := []int{0, 1, 2, 2, 3, 4} // epoch 2 executed twice
	if len(s.runs) != len(want) {
		t.Fatalf("runs = %v, want %v", s.runs, want)
	}
	for i := range want {
		if s.runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", s.runs, want)
		}
	}
}

func TestSupervisePersistentCorruptionEscalatesToRestart(t *testing.T) {
	// A corruption that is already inside the epoch-entry checkpoint cannot be
	// repaired by rollback: every retry restores the corrupt snapshot and
	// fails again. The supervisor must escalate to a full restart, after which
	// the (transient, non-recurring) fault is gone and the run completes.
	s := &simState{}
	poisoned := true // baked in before epoch 1's checkpoint on the first pass
	cfg := harness(s, 4, func(k int) error {
		if k == 1 && poisoned {
			return mismatch()
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 2, MaxRestarts: 1}
	// Restarting clears the poison: the initial checkpoint predates it.
	restore := cfg.Restore
	initial := s.value
	cfg.Restore = func(snap any) error {
		if err := restore(snap); err != nil {
			return err
		}
		if snap.(int) == initial {
			poisoned = false
		}
		return nil
	}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected || o.FirstDetection != 1 {
		t.Errorf("FirstDetection = %d, want 1", o.FirstDetection)
	}
	if o.Retries != 2 || o.Restarts != 1 {
		t.Errorf("Retries=%d Restarts=%d, want 2/1 (retries exhausted, then restart)", o.Retries, o.Restarts)
	}
	if !o.Recovered || o.Tainted {
		t.Errorf("Recovered=%v Tainted=%v, want recovery via restart", o.Recovered, o.Tainted)
	}
	if s.value != 4 {
		t.Errorf("final value = %d, want 4", s.value)
	}
}

func TestSuperviseDegradesGracefullyWhenExhausted(t *testing.T) {
	// Verification at epoch 1 never passes. With retries and restarts
	// exhausted the supervisor must degrade: mark the run tainted, stop
	// spending recovery effort, and still complete every epoch.
	s := &simState{}
	cfg := harness(s, 4, func(k int) error {
		if k == 1 {
			return mismatch()
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 1, MaxRestarts: 1}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Tainted || o.Recovered {
		t.Errorf("Tainted=%v Recovered=%v, want degraded completion", o.Tainted, o.Recovered)
	}
	if o.Retries != 2 || o.Restarts != 1 {
		// 1 retry on the first pass, restart, 1 retry on the second pass.
		t.Errorf("Retries=%d Restarts=%d, want 2/1", o.Retries, o.Restarts)
	}
	if s.value != 4 {
		t.Errorf("final value = %d, want 4 (degraded run still completes)", s.value)
	}
}

func TestSuperviseZeroPolicyDegradesImmediately(t *testing.T) {
	s := &simState{}
	faulted := false
	cfg := harness(s, 3, func(k int) error {
		if k == 0 && !faulted {
			faulted = true
			return mismatch()
		}
		return nil
	})
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Tainted || o.Retries != 0 || o.Restarts != 0 {
		t.Errorf("zero policy outcome = %+v, want immediate degradation", o)
	}
}

func TestSuperviseBackoffSequence(t *testing.T) {
	var pauses []time.Duration
	s := &simState{}
	attempts := 0
	cfg := harness(s, 1, func(k int) error {
		attempts++
		if attempts <= 3 {
			return mismatch()
		}
		return nil
	})
	cfg.Policy = Policy{
		MaxRetries:    3,
		Backoff:       10 * time.Millisecond,
		BackoffFactor: 2,
		Sleep:         func(d time.Duration) { pauses = append(pauses, d) },
	}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Recovered {
		t.Errorf("outcome = %+v", o)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(pauses) != len(want) {
		t.Fatalf("pauses = %v, want %v", pauses, want)
	}
	for i := range want {
		if pauses[i] != want[i] {
			t.Fatalf("pauses = %v, want exponential %v", pauses, want)
		}
	}
}

func TestSuperviseTelemetry(t *testing.T) {
	sink := &telemetry.Collector{}
	reg := telemetry.NewRegistry()
	s := &simState{}
	faulted := false
	cfg := harness(s, 3, func(k int) error {
		if k == 1 && !faulted {
			faulted = true
			return mismatch()
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 1}
	cfg.Trace = sink
	cfg.Metrics = reg
	if _, err := Supervise(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// 3 epochs + 1 re-execution = 4 boundary verifications, 1 retry.
	if got := sink.Count(telemetry.EvEpochVerify); got != 4 {
		t.Errorf("epoch.verify events = %d, want 4", got)
	}
	if got := sink.Count(telemetry.EvRecoveryRetry); got != 1 {
		t.Errorf("recovery.retry events = %d, want 1", got)
	}
	var ok, bad, retries float64
	for _, ms := range reg.Snapshot().Metrics {
		switch {
		case ms.Name == "defuse_epoch_verifications_total" && ms.Labels["result"] == "ok":
			ok = ms.Value
		case ms.Name == "defuse_epoch_verifications_total" && ms.Labels["result"] == "mismatch":
			bad = ms.Value
		case ms.Name == "defuse_recovery_retries_total":
			retries = ms.Value
		}
	}
	if ok != 3 || bad != 1 || retries != 1 {
		t.Errorf("metrics ok=%v mismatch=%v retries=%v, want 3/1/1", ok, bad, retries)
	}
}

func TestSuperviseConfigErrors(t *testing.T) {
	s := &simState{}
	if _, err := Supervise(context.Background(), harness(s, 0, nil)); err == nil {
		t.Error("Epochs=0 should fail")
	}
	bad := harness(s, 1, nil)
	bad.Run = nil
	if _, err := Supervise(context.Background(), bad); err == nil {
		t.Error("missing Run should fail")
	}
	bad = harness(s, 1, nil)
	bad.Checkpoint = nil
	if _, err := Supervise(context.Background(), bad); err == nil {
		t.Error("missing Checkpoint should fail")
	}
}

func TestSuperviseContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &simState{}
	_, err := Supervise(ctx, harness(s, 3, nil))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if len(s.runs) != 0 {
		t.Errorf("cancelled supervisor still ran epochs: %v", s.runs)
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FaultClass
	}{
		{"nil", nil, ClassNone},
		{"plain error", errors.New("disk on fire"), ClassNone},
		{"mismatch", mismatch(), ClassData},
		{"wrapped mismatch", fmt.Errorf("epoch 3: %w", mismatch()), ClassData},
		{"scrub", &checksum.ScrubError{Acc: checksum.AccUse, Primary: 1, Shadow: 2}, ClassDetector},
		{"detector fault", &rt.DetectorFaultError{Part: "counter", Err: errors.New("enc diverged")}, ClassDetector},
		{"rt checkpoint sentinel", fmt.Errorf("rollback: %w", rt.ErrCheckpointCorrupt), ClassCheckpoint},
		{"memsim checkpoint sentinel", fmt.Errorf("restore: %w", memsim.ErrCheckpointCorrupt), ClassCheckpoint},
		// A detector-fault wrapper around a checkpoint sentinel must classify
		// as checkpoint: the sentinel means the rollback path is compromised.
		{"checkpoint beats detector", &rt.DetectorFaultError{Part: "checkpoint", Err: rt.ErrCheckpointCorrupt}, ClassCheckpoint},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("%s: DefaultClassify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSuperviseDetectorFaultRebuildsWithoutBackoff(t *testing.T) {
	// A transient strike on the detector's own state (epoch 1, first attempt)
	// must be recovered by a rebuild: no backoff pause, no restart, and the
	// per-class tallies must say "detector", not "data".
	sink := &telemetry.Collector{}
	reg := telemetry.NewRegistry()
	s := &simState{}
	struck := false
	cfg := harness(s, 3, func(k int) error {
		if k == 1 && !struck {
			struck = true
			return &rt.DetectorFaultError{Part: "accumulator", Err: errors.New("shadow copy diverged")}
		}
		return nil
	})
	pauses := 0
	cfg.Policy = Policy{
		MaxRetries:  2,
		MaxRestarts: 1,
		Backoff:     5 * time.Millisecond,
		Sleep:       func(time.Duration) { pauses++ },
	}
	cfg.Trace = sink
	cfg.Metrics = reg
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected || o.FirstDetection != 1 {
		t.Errorf("Detected=%v FirstDetection=%d, want detection at epoch 1", o.Detected, o.FirstDetection)
	}
	if o.Rebuilds != 1 || o.DetectorFaults != 1 {
		t.Errorf("Rebuilds=%d DetectorFaults=%d, want 1/1", o.Rebuilds, o.DetectorFaults)
	}
	if o.DataFaults != 0 || o.CheckpointFaults != 0 || o.Restarts != 0 {
		t.Errorf("misclassified: %+v", o)
	}
	if pauses != 0 {
		t.Errorf("detector rebuild paused %d times; rebuilds must not back off", pauses)
	}
	if !o.Recovered || o.Tainted {
		t.Errorf("Recovered=%v Tainted=%v", o.Recovered, o.Tainted)
	}
	if s.value != 3 {
		t.Errorf("final value = %d, want 3", s.value)
	}
	if got := sink.Count(telemetry.EvDetectorFault); got != 1 {
		t.Errorf("detector.fault events = %d, want 1", got)
	}
	if got := sink.Count(telemetry.EvRecoveryRebuild); got != 1 {
		t.Errorf("recovery.rebuild events = %d, want 1", got)
	}
	for _, ms := range reg.Snapshot().Metrics {
		switch ms.Name {
		case "defuse_detector_faults_total", "defuse_recovery_rebuilds_total":
			if ms.Value != 1 {
				t.Errorf("%s = %v, want 1", ms.Name, ms.Value)
			}
		}
	}
}

func TestSuperviseUsesRebuildDetectorHook(t *testing.T) {
	// When RebuildDetector is configured it must be used for detector faults
	// instead of the full Restore.
	s := &simState{}
	struck := false
	cfg := harness(s, 2, func(k int) error {
		if k == 0 && !struck {
			struck = true
			return &checksum.ScrubError{Acc: checksum.AccEDef, Primary: 7, Shadow: 9}
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 1}
	rebuilds, restores := 0, 0
	restore := cfg.Restore
	cfg.Restore = func(snap any) error { restores++; return restore(snap) }
	cfg.RebuildDetector = func(snap any) error { rebuilds++; return restore(snap) }
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilds != 1 {
		t.Errorf("RebuildDetector called %d times, want 1", rebuilds)
	}
	if restores != 0 {
		t.Errorf("Restore called %d times for a detector fault, want 0", restores)
	}
	if !o.Recovered || o.Rebuilds != 1 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestSuperviseCorruptCheckpointRestartsImmediately(t *testing.T) {
	// A corrupt-checkpoint verdict means the rollback path cannot be trusted:
	// the supervisor must skip retries entirely and go straight to a full
	// restart from the initial checkpoint.
	sink := &telemetry.Collector{}
	s := &simState{}
	struck := false
	cfg := harness(s, 3, func(k int) error {
		if k == 1 && !struck {
			struck = true
			return fmt.Errorf("rollback: %w", memsim.ErrCheckpointCorrupt)
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 3, MaxRestarts: 1}
	cfg.Trace = sink
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Retries != 0 {
		t.Errorf("Retries = %d; corrupt checkpoints must not be retried through", o.Retries)
	}
	if o.Restarts != 1 || o.CheckpointFaults != 1 {
		t.Errorf("Restarts=%d CheckpointFaults=%d, want 1/1", o.Restarts, o.CheckpointFaults)
	}
	if !o.Recovered || o.Tainted {
		t.Errorf("Recovered=%v Tainted=%v", o.Recovered, o.Tainted)
	}
	if s.value != 3 {
		t.Errorf("final value = %d, want 3 (restart re-runs everything)", s.value)
	}
	if got := sink.Count(telemetry.EvCheckpointCorrupt); got != 1 {
		t.Errorf("checkpoint.corrupt events = %d, want 1", got)
	}
}

func TestSuperviseEpochRestoreFailureEscalates(t *testing.T) {
	// A data fault triggers rollback, but the epoch checkpoint's Restore
	// fails with a corrupt-checkpoint error. The supervisor must classify the
	// restore failure and escalate to a full restart (whose initial
	// checkpoint is intact).
	s := &simState{}
	struck := false
	cfg := harness(s, 3, func(k int) error {
		if k == 1 && !struck {
			struck = true
			return mismatch()
		}
		return nil
	})
	restore := cfg.Restore
	initial := s.value
	cfg.Restore = func(snap any) error {
		if snap.(int) != initial {
			return fmt.Errorf("recovery: %w", rt.ErrCheckpointCorrupt)
		}
		return restore(snap)
	}
	cfg.Policy = Policy{MaxRetries: 3, MaxRestarts: 1}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.DataFaults != 1 || o.CheckpointFaults != 1 {
		t.Errorf("DataFaults=%d CheckpointFaults=%d, want 1/1", o.DataFaults, o.CheckpointFaults)
	}
	if o.Retries != 1 || o.Restarts != 1 {
		t.Errorf("Retries=%d Restarts=%d, want 1/1", o.Retries, o.Restarts)
	}
	if !o.Recovered || s.value != 3 {
		t.Errorf("Recovered=%v value=%d, want recovery with value 3", o.Recovered, s.value)
	}
}

func TestSuperviseTerminalErrorAborts(t *testing.T) {
	// A Run/Verify error that is not a checksum mismatch is a terminal
	// execution failure, not a detection: no retries, error surfaces.
	s := &simState{}
	boom := errors.New("disk on fire")
	cfg := harness(s, 3, func(k int) error {
		if k == 1 {
			return boom
		}
		return nil
	})
	cfg.Policy = Policy{MaxRetries: 3}
	o, err := Supervise(context.Background(), cfg)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the terminal error", err)
	}
	if o.Detected || o.Retries != 0 {
		t.Errorf("terminal error misclassified as detection: %+v", o)
	}
}
