// Quickstart: instrument the paper's running example (Figure 1/4) and watch
// a transient memory error being detected.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"defuse"
	"defuse/internal/interp"
)

// The Figure 1(a) program: temp is defined once and used twice.
const src = `
program figure1()
float temp, sum1, sum2;
temp = 10.0 + 20.0;
sum1 = temp + 30.0;
sum2 = temp + 40.0;
`

func main() {
	res, err := defuse.Compile(src, defuse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== instrumented program (Figure 4 scheme) ==")
	fmt.Println(res.Source)
	fmt.Println(defuse.Describe(res))

	// Fault-free run: the checksums verify.
	m, err := defuse.NewMachine(res.Prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	sum1, _ := m.Float("sum1")
	sum2, _ := m.Float("sum2")
	fmt.Printf("fault-free run: sum1=%v sum2=%v, checksums verified\n\n", sum1, sum2)

	// Now corrupt temp in memory between its two uses: a transient bit flip
	// in the memory subsystem, exactly the paper's fault model.
	m2, err := defuse.NewMachine(res.Prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	base, _, err := m2.Region("temp")
	if err != nil {
		log.Fatal(err)
	}
	fired := false
	m2.SetStepHook(func(step uint64) {
		// Flip a mantissa bit of temp somewhere in the middle of execution.
		if !fired && step == uint64(m.Counts.Stmts/2) {
			m2.Mem().FlipBit(base, 48)
			fired = true
			fmt.Println("injected: bit 48 of temp flipped mid-run")
		}
	})
	err = m2.Run()
	var de *interp.DetectionError
	if errors.As(err, &de) {
		fmt.Printf("DETECTED: %v\n", de)
	} else {
		fmt.Printf("run result: %v (flip position may precede temp's definition)\n", err)
	}
}
