// Package pdg extracts the polyhedral model of a lang program: per-statement
// iteration domains, affine read/write access relations, and 2d+1 schedules
// built from AST edge numbering exactly as in Section 3.1 (Figure 3) of the
// paper. Statements or accesses that fall outside the affine fragment
// (data-dependent subscripts, while loops, non-affine conditionals) are
// retained but flagged, so the instrumenter can route them to the dynamic
// (inspector/counter) scheme of Section 4.
package pdg

import (
	"fmt"

	"defuse/internal/lang"
	"defuse/internal/poly"
)

// Access describes one array or scalar reference of a statement.
type Access struct {
	Ref     *lang.Ref
	Array   string
	IsWrite bool
	// Affine reports whether every subscript is affine in the statement's
	// iterators and the program parameters.
	Affine bool
	// Rel maps statement iterations to the referenced element (valid only
	// when Affine). Scalars are 0-dimensional arrays.
	Rel poly.BasicMap
	// Index holds the affine subscript expressions (valid only when Affine).
	Index []poly.LinExpr
}

// SchedTerm is one component of a 2d+1 schedule vector: either a loop
// iterator or an AST position constant.
type SchedTerm struct {
	IsIter bool
	Iter   string
	Const  int64
}

// String renders the term.
func (t SchedTerm) String() string {
	if t.IsIter {
		return t.Iter
	}
	return fmt.Sprintf("%d", t.Const)
}

// Statement is one assignment in the polyhedral model.
type Statement struct {
	// ID is the statement's label if present, else a generated "S<k>".
	ID   string
	Node *lang.Assign
	// Iters are the surrounding affine loop iterators, outermost first.
	Iters []string
	// Domain is the iteration space (empty constraints for a statement at
	// top level). Valid only when ControlAffine.
	Domain poly.BasicSet
	// Schedule is the 2d+1 schedule vector (d = model max loop depth).
	Schedule []SchedTerm
	// ControlAffine reports whether every surrounding control construct is
	// an affine for loop (no while, no data-dependent if).
	ControlAffine bool
	Write         Access
	Reads         []Access
}

// FullyAffine reports whether the statement's control and every access are
// affine — the fragment Algorithm 1 handles entirely at compile time.
func (s *Statement) FullyAffine() bool {
	if !s.ControlAffine || !s.Write.Affine {
		return false
	}
	for _, r := range s.Reads {
		if !r.Affine {
			return false
		}
	}
	return true
}

// Model is the polyhedral view of a program (or program region).
type Model struct {
	Prog  *lang.Program
	Stmts []*Statement
	// Depth is the maximum loop nest depth d; schedules have 2d+1 entries.
	Depth int
}

// Statement returns the statement with the given ID, or nil.
func (m *Model) Statement(id string) *Statement {
	for _, s := range m.Stmts {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// FullyAffine reports whether every statement of the model is fully affine.
func (m *Model) FullyAffine() bool {
	for _, s := range m.Stmts {
		if !s.FullyAffine() {
			return false
		}
	}
	return true
}

// Extract builds the polyhedral model of the whole program body.
func Extract(prog *lang.Program) (*Model, error) {
	return ExtractRegion(prog, prog.Body)
}

// ExtractRegion builds the model of a statement list within prog. Section
// 4.2's iterative-code analysis uses this to analyze a while-loop body as an
// affine region of its own.
func ExtractRegion(prog *lang.Program, body []lang.Stmt) (*Model, error) {
	if err := lang.Check(prog); err != nil {
		return nil, err
	}
	x := &extractor{prog: prog, model: &Model{Prog: prog}, used: map[string]bool{}}
	// Reserve user labels up front so generated IDs never collide with them.
	lang.WalkStmts(body, func(s lang.Stmt) bool {
		if a, ok := s.(*lang.Assign); ok && a.Label != "" {
			if x.used[a.Label] {
				x.dupLabel = a.Label
			}
			x.used[a.Label] = true
		}
		return true
	})
	if x.dupLabel != "" {
		return nil, fmt.Errorf("pdg: duplicate statement label %q", x.dupLabel)
	}
	x.walk(body, nil, nil, true)
	// Pad schedules to uniform 2d+1 length.
	d := x.model.Depth
	for _, s := range x.model.Stmts {
		for len(s.Schedule) < 2*d+1 {
			s.Schedule = append(s.Schedule, SchedTerm{Const: 0})
		}
	}
	return x.model, nil
}

type loopCtx struct {
	iter   string
	lo, hi poly.LinExpr
	affine bool
}

type extractor struct {
	prog     *lang.Program
	model    *Model
	stmtSeq  int
	used     map[string]bool
	dupLabel string
}

// walk numbers statements at this level 0,1,2,... (AST edge numbering) and
// recurses into loop bodies, building schedule prefixes.
func (x *extractor) walk(body []lang.Stmt, loops []loopCtx, prefix []SchedTerm, affineCtl bool) {
	for pos, s := range body {
		here := append(append([]SchedTerm(nil), prefix...), SchedTerm{Const: int64(pos)})
		switch st := s.(type) {
		case *lang.Assign:
			x.addStatement(st, loops, here, affineCtl)
		case *lang.For:
			lo, loOK := x.toLin(st.Lo, loops)
			hi, hiOK := x.toLin(st.Hi, loops)
			lc := loopCtx{iter: st.Iter, lo: lo, hi: hi, affine: loOK && hiOK}
			nl := append(append([]loopCtx(nil), loops...), lc)
			if len(nl) > x.model.Depth {
				x.model.Depth = len(nl)
			}
			np := append(here, SchedTerm{IsIter: true, Iter: st.Iter})
			x.walk(st.Body, nl, np, affineCtl && lc.affine)
		case *lang.While:
			// Statements under a while are never control-affine.
			np := append(here, SchedTerm{Const: 0})
			x.walk(st.Body, loops, np, false)
		case *lang.If:
			np := append(here, SchedTerm{Const: 0})
			x.walk(st.Then, loops, np, false)
			np2 := append(here, SchedTerm{Const: 1})
			x.walk(st.Else, loops, np2, false)
		case *lang.AddToChecksum, *lang.AssertChecksums:
			// Instrumentation statements are not modeled.
		}
	}
}

func (x *extractor) addStatement(a *lang.Assign, loops []loopCtx, sched []SchedTerm, affineCtl bool) {
	id := a.Label
	if id == "" {
		for {
			x.stmtSeq++
			id = fmt.Sprintf("S%d", x.stmtSeq)
			if !x.used[id] {
				break
			}
		}
		x.used[id] = true
	}
	st := &Statement{ID: id, Node: a, ControlAffine: affineCtl, Schedule: sched}
	for _, lc := range loops {
		st.Iters = append(st.Iters, lc.iter)
	}
	st.Domain = poly.NewBasicSet(id, st.Iters...)
	if affineCtl {
		for _, lc := range loops {
			iv := poly.V(lc.iter)
			st.Domain = st.Domain.With(poly.Ge(iv, lc.lo), poly.Le(iv, lc.hi))
		}
	}
	st.Write = x.access(st, a.LHS, true, loops)
	// Compound assignment reads its own left-hand side.
	if a.Op != lang.OpSet {
		st.Reads = append(st.Reads, x.access(st, a.LHS, false, loops))
	}
	for _, r := range dataReads(a.RHS, x.prog, loops) {
		st.Reads = append(st.Reads, x.access(st, r, false, loops))
	}
	// Subscript reads (e.g. cols[j1] inside p_new[cols[j1]]) are data reads
	// too: collect refs appearing inside subscripts of other refs.
	for _, r := range subscriptReads(a, x.prog, loops) {
		st.Reads = append(st.Reads, x.access(st, r, false, loops))
	}
	x.model.Stmts = append(x.model.Stmts, st)
}

// dataReads returns the top-level variable reads of an expression: every Ref
// denoting a declared variable (not iterators/parameters), excluding refs
// that appear inside another ref's subscript (those are returned by
// subscriptReads so they are counted exactly once).
func dataReads(e lang.Expr, prog *lang.Program, loops []loopCtx) []*lang.Ref {
	var out []*lang.Ref
	var visit func(lang.Expr)
	visit = func(e lang.Expr) {
		switch v := e.(type) {
		case *lang.Ref:
			if prog.Decl(v.Name) != nil {
				out = append(out, v)
			}
			// Do not descend into subscripts here.
		case *lang.Bin:
			visit(v.L)
			visit(v.R)
		case *lang.Un:
			visit(v.X)
		case *lang.Call:
			for _, a := range v.Args {
				visit(a)
			}
		}
	}
	visit(e)
	return out
}

// subscriptReads returns variable refs appearing inside subscripts anywhere
// in the statement (LHS and RHS).
func subscriptReads(a *lang.Assign, prog *lang.Program, loops []loopCtx) []*lang.Ref {
	var out []*lang.Ref
	var inSubs func(r *lang.Ref)
	inSubs = func(r *lang.Ref) {
		for _, ix := range r.Indices {
			lang.WalkExpr(ix, func(e lang.Expr) bool {
				if sub, ok := e.(*lang.Ref); ok {
					if prog.Decl(sub.Name) != nil {
						out = append(out, sub)
					}
					inSubs(sub)
					return false // children handled by recursion
				}
				return true
			})
		}
	}
	inSubs(a.LHS)
	lang.WalkExpr(a.RHS, func(e lang.Expr) bool {
		if r, ok := e.(*lang.Ref); ok {
			inSubs(r)
		}
		return true
	})
	return out
}

func (x *extractor) access(st *Statement, ref *lang.Ref, isWrite bool, loops []loopCtx) Access {
	acc := Access{Ref: ref, Array: ref.Name, IsWrite: isWrite}
	if !st.ControlAffine {
		return acc
	}
	outDims := make([]string, len(ref.Indices))
	for k := range outDims {
		outDims[k] = fmt.Sprintf("%s_a%d", ref.Name, k)
	}
	rel := poly.NewBasicMap(st.ID, st.Iters, ref.Name, outDims)
	// Domain constraints are part of the access relation.
	rel = rel.With(st.Domain.Cons...)
	var index []poly.LinExpr
	for k, ixExpr := range ref.Indices {
		lin, ok := x.toLin(ixExpr, loops)
		if !ok {
			return acc // non-affine subscript
		}
		rel = rel.With(poly.Eq(poly.V(outDims[k]), lin))
		index = append(index, lin)
	}
	acc.Affine = true
	acc.Rel = rel
	acc.Index = index
	return acc
}

// toLin converts an expression to an affine LinExpr over the surrounding
// iterators and program parameters.
func (x *extractor) toLin(e lang.Expr, loops []loopCtx) (poly.LinExpr, bool) {
	isVar := func(name string) bool {
		if x.prog.IsParam(name) {
			return true
		}
		for _, lc := range loops {
			if lc.iter == name {
				return true
			}
		}
		return false
	}
	return ExprToLin(e, isVar)
}

// ExprToLin converts an affine lang expression into a poly.LinExpr, treating
// names accepted by isVar as symbolic variables. The second result is false
// when the expression is not affine.
func ExprToLin(e lang.Expr, isVar func(string) bool) (poly.LinExpr, bool) {
	switch v := e.(type) {
	case *lang.IntLit:
		return poly.L(v.Val), true
	case *lang.Ref:
		if len(v.Indices) == 0 && isVar(v.Name) {
			return poly.V(v.Name), true
		}
		return poly.LinExpr{}, false
	case *lang.Un:
		if v.Op != lang.UnNeg {
			return poly.LinExpr{}, false
		}
		inner, ok := ExprToLin(v.X, isVar)
		if !ok {
			return poly.LinExpr{}, false
		}
		return inner.Neg(), true
	case *lang.Bin:
		l, lok := ExprToLin(v.L, isVar)
		r, rok := ExprToLin(v.R, isVar)
		if !lok || !rok {
			return poly.LinExpr{}, false
		}
		switch v.Op {
		case lang.BinAdd:
			return l.Add(r), true
		case lang.BinSub:
			return l.Sub(r), true
		case lang.BinMul:
			if l.IsConst() {
				return r.Scale(l.Const()), true
			}
			if r.IsConst() {
				return l.Scale(r.Const()), true
			}
		}
		return poly.LinExpr{}, false
	}
	return poly.LinExpr{}, false
}

// LinToExpr converts a poly.LinExpr back into a lang expression (used when
// generating instrumentation code from analysis results).
func LinToExpr(e poly.LinExpr) lang.Expr {
	var out lang.Expr
	add := func(term lang.Expr, negative bool) {
		if out == nil {
			if negative {
				out = &lang.Un{Op: lang.UnNeg, X: term}
			} else {
				out = term
			}
			return
		}
		op := lang.BinAdd
		if negative {
			op = lang.BinSub
		}
		out = &lang.Bin{Op: op, L: out, R: term}
	}
	for _, v := range e.Vars() {
		c := e.Coeff(v)
		neg := c < 0
		if neg {
			c = -c
		}
		var term lang.Expr = &lang.Ref{Name: v}
		if c != 1 {
			term = &lang.Bin{Op: lang.BinMul, L: &lang.IntLit{Val: c}, R: term}
		}
		add(term, neg)
	}
	if k := e.Const(); k != 0 || out == nil {
		neg := k < 0
		if neg {
			k = -k
		}
		add(&lang.IntLit{Val: k}, neg)
	}
	return out
}

func termLin(t SchedTerm, ren map[string]string) poly.LinExpr {
	if t.IsIter {
		name := t.Iter
		if ren != nil {
			if nn, ok := ren[name]; ok {
				name = nn
			}
		}
		return poly.V(name)
	}
	return poly.L(t.Const)
}

// SchedLTBranches returns the constraint branches encoding
// theta_a(i) <lex theta_b(j), with a's iterators renamed through aRen and
// b's through bRen (nil maps keep names). Branch k states equality of the
// first k schedule positions and strict order at position k; infeasible
// constant branches are dropped.
func SchedLTBranches(a, b *Statement, aRen, bRen map[string]string) [][]poly.Constraint {
	n := len(a.Schedule)
	if len(b.Schedule) < n {
		n = len(b.Schedule)
	}
	var branches [][]poly.Constraint
	for k := 0; k < n; k++ {
		var cons []poly.Constraint
		feasible := true
		for p := 0; p < k; p++ {
			ta, tb := a.Schedule[p], b.Schedule[p]
			if !ta.IsIter && !tb.IsIter {
				if ta.Const != tb.Const {
					feasible = false
					break
				}
				continue
			}
			cons = append(cons, poly.Eq(termLin(ta, aRen), termLin(tb, bRen)))
		}
		if !feasible {
			continue
		}
		ta, tb := a.Schedule[k], b.Schedule[k]
		if !ta.IsIter && !tb.IsIter {
			if ta.Const < tb.Const {
				// Strict constant order: no position-k constraint needed,
				// and later branches would contradict this one, so stop.
				branches = append(branches, cons)
				break
			}
			continue
		}
		branches = append(branches, append(cons, poly.Lt(termLin(ta, aRen), termLin(tb, bRen))))
	}
	return branches
}

// RenameSuffix builds the renaming map appending suffix to each iterator.
func RenameSuffix(iters []string, suffix string) map[string]string {
	m := make(map[string]string, len(iters))
	for _, it := range iters {
		m[it] = it + suffix
	}
	return m
}

// Precedes builds the lexicographic schedule-precedence relation between two
// statements: { a_iters -> b_iters : theta_a(i) < theta_b(j) } as a union of
// basic maps (one per first-differing schedule position). Output dims of b
// are renamed with the given suffix to avoid collisions with a's iterators.
func Precedes(a, b *Statement, suffix string) poly.Map {
	bRen := RenameSuffix(b.Iters, suffix)
	bIters := make([]string, len(b.Iters))
	for i, it := range b.Iters {
		bIters[i] = bRen[it]
	}
	var pieces []poly.BasicMap
	for _, branch := range SchedLTBranches(a, b, nil, bRen) {
		bm := poly.NewBasicMap(a.ID, a.Iters, b.ID, bIters).With(branch...)
		pieces = append(pieces, bm)
	}
	return poly.UnionMap(pieces...)
}
