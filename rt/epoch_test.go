package rt

import (
	"testing"

	"defuse/internal/checksum"
)

func TestEpochAdvanceAndOpCounts(t *testing.T) {
	tr := NewTracker()
	if tr.Epoch() != 0 {
		t.Fatalf("fresh tracker Epoch = %d", tr.Epoch())
	}
	var c Counter
	for k := 0; k < 3; k++ {
		entry := tr.BeginEpoch()
		if !entry.Sealed() || entry.Index != k {
			t.Fatalf("epoch %d: entry = %+v", k, entry)
		}
		DefDyn(tr, &c, 0.0, 1.5)
		Use(tr, &c, 1.5)
		Final(tr, &c, 1.5)
		exit, err := tr.EndEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		if !exit.Sealed() || exit.Index != k {
			t.Fatalf("epoch %d: exit = %+v", k, exit)
		}
		if tr.Epoch() != k+1 {
			t.Fatalf("after epoch %d: Epoch = %d", k, tr.Epoch())
		}
	}
	defs, uses := tr.OpCounts()
	if defs != 3 || uses != 3 {
		t.Errorf("OpCounts = %d/%d, want 3/3", defs, uses)
	}
}

func TestEndEpochMismatchDoesNotAdvance(t *testing.T) {
	tr := NewTracker()
	var c Counter
	DefDyn(tr, &c, 0.0, 2.0)
	Use(tr, &c, CorruptBits(2.0, 13)) // the use sees a corrupted value
	Final(tr, &c, 2.0)
	s, err := tr.EndEpoch()
	if err == nil {
		t.Fatal("corrupted epoch verified clean")
	}
	if tr.Epoch() != 0 {
		t.Errorf("Epoch advanced past a mismatch: %d", tr.Epoch())
	}
	if !s.Sealed() || s.Index != 0 {
		t.Errorf("mismatch snapshot = %+v", s)
	}
}

func TestRollbackRestoresEntrySnapshot(t *testing.T) {
	tr := NewTracker()
	var c Counter
	DefDyn(tr, &c, 0.0, 3.0)
	Use(tr, &c, 3.0)
	Final(tr, &c, 3.0)
	if _, err := tr.EndEpoch(); err != nil {
		t.Fatal(err)
	}
	entry := tr.BeginEpoch()
	wantDef, wantUse, wantEDef, wantEUse := tr.Checksums()

	// A lopsided epoch: defs without matching uses.
	var d Counter
	DefDyn(tr, &d, 0.0, 9.0)
	Use(tr, &d, 7.0)
	if err := tr.Rollback(entry); err != nil {
		t.Fatal(err)
	}
	def, use, edef, euse := tr.Checksums()
	if def != wantDef || use != wantUse || edef != wantEDef || euse != wantEUse {
		t.Errorf("Rollback left %x/%x/%x/%x, want %x/%x/%x/%x",
			def, use, edef, euse, wantDef, wantUse, wantEDef, wantEUse)
	}
	if tr.Epoch() != entry.Index {
		t.Errorf("Epoch = %d, want %d", tr.Epoch(), entry.Index)
	}
	if err := tr.Verify(); err != nil {
		t.Errorf("rolled-back tracker should verify clean: %v", err)
	}
	defs, uses := tr.OpCounts()
	if defs != entry.Defs || uses != entry.Uses {
		t.Errorf("OpCounts = %d/%d, want %d/%d", defs, uses, entry.Defs, entry.Uses)
	}
}

func TestRollbackRejectsUnsealedState(t *testing.T) {
	tr := NewTracker()
	Def(tr, 1.0, 1)
	if err := tr.Rollback(EpochState{}); err == nil {
		t.Fatal("zero EpochState accepted: would silently wipe the tracker")
	}
	if def, _, _, _ := tr.Checksums(); def == 0 {
		t.Error("rejected rollback still clobbered the checksums")
	}
}

func TestResetClearsEpochStateUnderObserver(t *testing.T) {
	// Satellite: Reset and Checksums must behave identically with an
	// observer attached — the observer must not see phantom events from
	// either, and Reset must clear epochs and op counters too.
	obs := &CountingObserver{}
	tr := NewTracker().SetObserver(obs)
	var c Counter
	DefDyn(tr, &c, 0.0, 4.0)
	Use(tr, &c, 4.0)
	Final(tr, &c, 4.0)
	if _, err := tr.EndEpoch(); err != nil {
		t.Fatal(err)
	}
	defsBefore, usesBefore := obs.Defs.Load(), obs.Uses.Load()

	tr.Reset()
	if def, use, edef, euse := tr.Checksums(); def|use|edef|euse != 0 {
		t.Errorf("Reset left checksums %x/%x/%x/%x", def, use, edef, euse)
	}
	if tr.Epoch() != 0 {
		t.Errorf("Reset left Epoch = %d", tr.Epoch())
	}
	if defs, uses := tr.OpCounts(); defs != 0 || uses != 0 {
		t.Errorf("Reset left OpCounts = %d/%d", defs, uses)
	}
	if obs.Defs.Load() != defsBefore || obs.Uses.Load() != usesBefore {
		t.Error("Reset/Checksums emitted observer events")
	}
	if err := tr.Verify(); err != nil {
		t.Errorf("reset tracker must verify clean: %v", err)
	}
	// The observer stays attached and keeps observing after Reset.
	Def(tr, 5.0, 1)
	if obs.Defs.Load() != defsBefore+1 {
		t.Error("observer detached by Reset")
	}
}

// FuzzDefUsePair drives the dynamic def/use protocol with fuzz-chosen values
// and use counts: a balanced sequence must always verify, and corrupting a
// single use with a nonzero bit mask must always be detected.
func FuzzDefUsePair(f *testing.F) {
	f.Add(uint64(0x3ff8000000000000), uint8(1), uint64(0))
	f.Add(uint64(0xdeadbeefcafebabe), uint8(7), uint64(1<<51))
	f.Add(uint64(0), uint8(0), uint64(1))
	f.Add(^uint64(0), uint8(3), uint64(0x8000000000000000))
	f.Fuzz(func(t *testing.T, bits uint64, nUses uint8, mask uint64) {
		for _, kind := range []checksum.Kind{checksum.ModAdd, checksum.XOR} {
			tr := NewTrackerWith(kind)
			var c Counter
			DefDyn(tr, &c, uint64(0), bits)
			for i := uint8(0); i < nUses; i++ {
				Use(tr, &c, bits)
			}
			// Redefine (exercising the Adjust path), one more use, finalize.
			next := bits ^ 0xa5a5a5a5a5a5a5a5
			DefDyn(tr, &c, bits, next)
			Use(tr, &c, next)
			Final(tr, &c, next)
			if err := tr.Verify(); err != nil {
				t.Fatalf("kind=%v balanced sequence failed: %v", kind, err)
			}

			if mask == 0 {
				continue
			}
			tr.Reset()
			c = Counter{}
			DefDyn(tr, &c, uint64(0), bits)
			Use(tr, &c, bits^mask) // single corrupted use
			Final(tr, &c, bits)
			if err := tr.Verify(); err == nil {
				t.Fatalf("kind=%v corrupted use (mask %#x) escaped", kind, mask)
			}
		}
	})
}
