package lang

import (
	"fmt"
	"strings"
)

// Print renders a program back to parseable source text.
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s(%s)\n", p.Name, strings.Join(p.Params, ", "))
	for _, d := range p.Decls {
		b.WriteString(d.Type.String())
		b.WriteString(" ")
		b.WriteString(d.Name)
		for _, dim := range d.Dims {
			fmt.Fprintf(&b, "[%s]", ExprString(dim))
		}
		b.WriteString(";\n")
	}
	printStmts(&b, p.Body, 0)
	return b.String()
}

// PrintStmts renders a statement list at the given indent level.
func PrintStmts(ss []Stmt) string {
	var b strings.Builder
	printStmts(&b, ss, 0)
	return b.String()
}

func printStmts(b *strings.Builder, ss []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch x := s.(type) {
		case *Assign:
			b.WriteString(ind)
			if x.Label != "" {
				b.WriteString(x.Label + ": ")
			}
			fmt.Fprintf(b, "%s %s %s;\n", ExprString(x.LHS), x.Op, ExprString(x.RHS))
		case *For:
			fmt.Fprintf(b, "%sfor %s = %s to %s {\n", ind, x.Iter, ExprString(x.Lo), ExprString(x.Hi))
			printStmts(b, x.Body, depth+1)
			b.WriteString(ind + "}\n")
		case *While:
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, ExprString(x.Cond))
			printStmts(b, x.Body, depth+1)
			b.WriteString(ind + "}\n")
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, ExprString(x.Cond))
			printStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				b.WriteString(ind + "} else {\n")
				printStmts(b, x.Else, depth+1)
			}
			b.WriteString(ind + "}\n")
		case *AddToChecksum:
			fmt.Fprintf(b, "%sadd_to_chksm(%s, %s, %s);\n", ind, x.CS, ExprString(x.Value), ExprString(x.Count))
		case *AssertChecksums:
			b.WriteString(ind + "assert_checksums();\n")
		default:
			panic(fmt.Sprintf("lang: print: unknown statement %T", s))
		}
	}
}

// precedence levels for printing with minimal parentheses.
func binPrec(op BinOp) int {
	switch op {
	case BinOr:
		return 1
	case BinAnd:
		return 2
	case BinEq, BinNe, BinLt, BinLe, BinGt, BinGe:
		return 3
	case BinAdd, BinSub:
		return 4
	default: // mul, div, mod
		return 5
	}
}

// ExprString renders an expression to parseable source text.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parentPrec int) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Val)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *Ref:
		var b strings.Builder
		b.WriteString(x.Name)
		for _, ix := range x.Indices {
			fmt.Fprintf(&b, "[%s]", exprString(ix, 0))
		}
		return b.String()
	case *Bin:
		prec := binPrec(x.Op)
		// Right operand of -, /, % needs parens at equal precedence.
		rp := prec
		switch x.Op {
		case BinSub, BinDiv, BinMod:
			rp = prec + 1
		}
		s := fmt.Sprintf("%s %s %s", exprString(x.L, prec), x.Op, exprString(x.R, rp))
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	case *Un:
		return x.Op.String() + exprString(x.X, 6)
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprString(a, 0)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	}
	panic(fmt.Sprintf("lang: print: unknown expression %T", e))
}
