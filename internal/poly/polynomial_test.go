package poly

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestPolyBasics(t *testing.T) {
	p := PolyVar("n").Mul(PolyVar("n")).Sub(PolyVar("n")).ScaleRat(big.NewRat(1, 2))
	// p = (n^2 - n)/2, the triangular number T(n-1).
	for n := int64(0); n <= 10; n++ {
		got, err := p.EvalInt(map[string]int64{"n": n})
		if err != nil {
			t.Fatal(err)
		}
		if want := n * (n - 1) / 2; got != want {
			t.Errorf("T(%d) = %d, want %d", n, got, want)
		}
	}
	if got := p.String(); got != "1/2*n^2 - 1/2*n" {
		t.Errorf("String() = %q", got)
	}
}

func TestPolyFromLinRoundTrip(t *testing.T) {
	e := Term(3, "i").Add(Term(-2, "j")).AddConst(7)
	p := PolyFromLin(e)
	back, ok := p.AsLin()
	if !ok || !back.Equal(e) {
		t.Errorf("round trip failed: %v -> %v", e, back)
	}
	// Non-affine polynomial does not convert.
	if _, ok := PolyVar("x").Mul(PolyVar("x")).AsLin(); ok {
		t.Error("x^2 should not convert to LinExpr")
	}
	// Non-integer coefficients do not convert.
	if _, ok := PolyVar("x").ScaleRat(big.NewRat(1, 2)).AsLin(); ok {
		t.Error("x/2 should not convert to LinExpr")
	}
}

func TestPolyArithmeticAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	randPoly := func() Polynomial {
		p := PolyInt(int64(rng.Intn(7) - 3))
		for k := 0; k < 3; k++ {
			v := []string{"x", "y"}[rng.Intn(2)]
			t := PolyVar(v).Pow(rng.Intn(3)).ScaleInt(int64(rng.Intn(5) - 2))
			p = p.Add(t)
		}
		return p
	}
	env := map[string]int64{"x": 3, "y": -2}
	evalOf := func(p Polynomial) *big.Rat {
		r, err := p.EvalRat(env)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for trial := 0; trial < 100; trial++ {
		a, b := randPoly(), randPoly()
		sum := new(big.Rat).Add(evalOf(a), evalOf(b))
		if sum.Cmp(evalOf(a.Add(b))) != 0 {
			t.Fatalf("Add mismatch: %v + %v", a, b)
		}
		prod := new(big.Rat).Mul(evalOf(a), evalOf(b))
		if prod.Cmp(evalOf(a.Mul(b))) != 0 {
			t.Fatalf("Mul mismatch: %v * %v", a, b)
		}
		diff := new(big.Rat).Sub(evalOf(a), evalOf(b))
		if diff.Cmp(evalOf(a.Sub(b))) != 0 {
			t.Fatalf("Sub mismatch")
		}
	}
}

func TestPolySubstLin(t *testing.T) {
	// (x^2 + x)[x := y+1] = y^2 + 3y + 2
	p := PolyVar("x").Pow(2).Add(PolyVar("x"))
	q := p.SubstLin("x", V("y").AddConst(1))
	for y := int64(-5); y <= 5; y++ {
		got, err := q.EvalInt(map[string]int64{"y": y})
		if err != nil {
			t.Fatal(err)
		}
		x := y + 1
		if want := x*x + x; got != want {
			t.Errorf("subst at y=%d: %d want %d", y, got, want)
		}
	}
	// Substituting an absent variable is identity.
	if !p.SubstLin("zz", L(9)).Equal(p) {
		t.Error("substituting absent var changed polynomial")
	}
}

func TestPolyCoeffsByVar(t *testing.T) {
	// p = 2x^2*y + 3x + y + 5, decomposed by x: [y+5, 3, 2y]
	p := PolyVar("x").Pow(2).Mul(PolyVar("y")).ScaleInt(2).
		Add(PolyVar("x").ScaleInt(3)).
		Add(PolyVar("y")).
		Add(PolyInt(5))
	cs := p.CoeffsByVar("x")
	if len(cs) != 3 {
		t.Fatalf("got %d coefficients", len(cs))
	}
	env := map[string]int64{"y": 4}
	wants := []int64{9, 3, 8}
	for k, want := range wants {
		got, err := cs[k].EvalInt(env)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("coeff of x^%d = %d, want %d", k, got, want)
		}
	}
}

func TestFaulhaberIdentities(t *testing.T) {
	// F_k(m) must equal sum_{x=0}^{m} x^k for every supported k.
	for k := 0; k <= 8; k++ {
		f := faulhaber(k, "m")
		for m := int64(0); m <= 12; m++ {
			got, err := f.EvalInt(map[string]int64{"m": m})
			if err != nil {
				t.Fatalf("k=%d m=%d: %v", k, m, err)
			}
			var want int64
			for x := int64(0); x <= m; x++ {
				p := int64(1)
				for i := 0; i < k; i++ {
					p *= x
				}
				want += p
			}
			if got != want {
				t.Errorf("F_%d(%d) = %d, want %d", k, m, got, want)
			}
		}
		// Telescoping empty-sum property: F_k(-1) = 0 for k >= 1; F_0(-1)=0.
		got, err := f.EvalInt(map[string]int64{"m": -1})
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("F_%d(-1) = %d, want 0", k, got)
		}
	}
}

func TestFaulhaberUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=9")
		}
	}()
	faulhaber(9, "m")
}

func TestSumOverVar(t *testing.T) {
	// sum_{x=L}^{U} (x + c) for affine bounds in n.
	p := PolyVar("x").Add(PolyVar("c"))
	lo := V("j").AddConst(1)
	hi := V("n").AddConst(-1)
	s, err := SumOverVar(p, "x", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	// Cases keep hi >= lo-1, the documented validity domain (an empty sum at
	// hi = lo-1 telescopes to 0; the counting engine guards hi >= lo).
	for _, tc := range []struct{ j, n, c int64 }{{0, 5, 2}, {3, 10, -1}, {4, 5, 0}, {4, 6, 7}} {
		got, err := s.EvalInt(map[string]int64{"j": tc.j, "n": tc.n, "c": tc.c})
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for x := tc.j + 1; x <= tc.n-1; x++ {
			want += x + tc.c
		}
		if got != want {
			t.Errorf("sum j=%d n=%d c=%d: got %d want %d", tc.j, tc.n, tc.c, got, want)
		}
	}
}

func TestSumOverVarRejectsBadBounds(t *testing.T) {
	p := PolyVar("x")
	if _, err := SumOverVar(p, "x", V("x"), L(10)); err == nil {
		t.Error("bounds involving the summation variable must be rejected")
	}
}

func TestSumOverVarHighDegree(t *testing.T) {
	// sum of x^4 from 0 to n: exercise the higher Faulhaber formulas.
	p := PolyVar("x").Pow(4)
	s, err := SumOverVar(p, "x", L(0), V("n"))
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 8; n++ {
		got, _ := s.EvalInt(map[string]int64{"n": n})
		var want int64
		for x := int64(0); x <= n; x++ {
			want += x * x * x * x
		}
		if got != want {
			t.Errorf("sum x^4 to %d: got %d want %d", n, got, want)
		}
	}
}

func TestPolyIsConstAndZero(t *testing.T) {
	if !PolyZero().IsZero() {
		t.Error("PolyZero not zero")
	}
	if c, ok := PolyInt(5).IsConst(); !ok || c.Cmp(big.NewRat(5, 1)) != 0 {
		t.Error("PolyInt(5) should be const 5")
	}
	if _, ok := PolyVar("x").IsConst(); ok {
		t.Error("x is not constant")
	}
	if p := PolyVar("x").Sub(PolyVar("x")); !p.IsZero() {
		t.Error("x - x should be zero")
	}
}

func TestPolyEvalMissingVar(t *testing.T) {
	if _, err := PolyVar("q").EvalInt(nil); err == nil {
		t.Error("expected error for unbound variable")
	}
}

func TestPolyEvalNonInteger(t *testing.T) {
	p := PolyVar("x").ScaleRat(big.NewRat(1, 2))
	if _, err := p.EvalInt(map[string]int64{"x": 3}); err == nil {
		t.Error("x/2 at x=3 should fail EvalInt")
	}
	if v, err := p.EvalInt(map[string]int64{"x": 4}); err != nil || v != 2 {
		t.Errorf("x/2 at x=4 = %d, %v", v, err)
	}
}

func TestPolyString(t *testing.T) {
	cases := []struct {
		p    Polynomial
		want string
	}{
		{PolyZero(), "0"},
		{PolyInt(-3), "-3"},
		{PolyVar("n"), "n"},
		{PolyVar("n").ScaleInt(-1), "-n"},
		{PolyVar("n").Pow(2).Sub(PolyInt(1)), "n^2 - 1"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPolyVarsAndDegree(t *testing.T) {
	p := PolyVar("a").Mul(PolyVar("b")).Pow(2).Add(PolyVar("c"))
	vs := p.Vars()
	if len(vs) != 3 || vs[0] != "a" || vs[1] != "b" || vs[2] != "c" {
		t.Errorf("Vars = %v", vs)
	}
	if p.Degree("a") != 2 || p.Degree("c") != 1 || p.Degree("zz") != 0 {
		t.Error("Degree wrong")
	}
	if !p.Uses("a") || p.Uses("zz") {
		t.Error("Uses wrong")
	}
}
