package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"defuse/telemetry"
)

// rawPost issues one /run request and returns the raw HTTP response.
func rawPost(t *testing.T, url string, req Request) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hresp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	t.Cleanup(func() { hresp.Body.Close() })
	return hresp
}

// TestLadderTransitions drives the state machine directly: sheds climb
// healthy → shedding → degraded, sustained admissions walk back to healthy,
// and drain is terminal.
func TestLadderTransitions(t *testing.T) {
	var transitions []string
	l := newLadder(3, 2, func(from, to, reason string) {
		transitions = append(transitions, from+"->"+to)
	})
	if l.current() != StateHealthy {
		t.Fatalf("initial state %q", l.current())
	}
	l.noteShed()
	if l.current() != StateShedding {
		t.Fatalf("after one shed: %q", l.current())
	}
	if l.rejectKernel() {
		t.Fatal("shedding must still serve kernel jobs")
	}
	l.noteShed()
	l.noteShed()
	if l.current() != StateDegraded || !l.rejectKernel() {
		t.Fatalf("after 3 consecutive sheds: %q", l.current())
	}
	// An admission interrupting the calm streak resets it.
	l.noteAdmit()
	l.noteShed()
	l.noteAdmit()
	if l.current() != StateDegraded {
		t.Fatalf("one admission must not recover: %q", l.current())
	}
	l.noteAdmit()
	if l.current() != StateHealthy {
		t.Fatalf("after sustained admissions: %q", l.current())
	}
	if l.degradedEntered() != 1 {
		t.Fatalf("degraded entered %d times, want 1", l.degradedEntered())
	}
	l.noteDrain()
	l.noteAdmit()
	l.noteShed()
	if l.current() != StateDraining {
		t.Fatalf("draining must be terminal: %q", l.current())
	}
	want := []string{
		"healthy->shedding", "shedding->degraded", "degraded->healthy", "healthy->draining",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

// TestDegradedRejectsKernelServesVerify forces the ladder to degraded and
// checks the split behavior end to end: kernel jobs bounce with 503 +
// Retry-After, verify jobs still complete, and /readyz + stats surface the
// state.
func TestDegradedRejectsKernelServesVerify(t *testing.T) {
	health := telemetry.NewHealth()
	s, ts := newTestServer(t, Config{
		Words: 8, Epochs: 2, Seed: 5, Kernel: "jacobi1d", Scale: 0.001,
		MaxInFlight: 2, QueueDepth: 2, DegradeAfterSheds: 2, RecoverAfterOK: 3,
		Obs: &telemetry.Obs{Health: health, Metrics: telemetry.NewRegistry()},
	})
	s.ladder.noteShed()
	s.ladder.noteShed()
	if got := s.ladder.current(); got != StateDegraded {
		t.Fatalf("state = %q, want degraded", got)
	}
	if health.State() != StateDegraded {
		t.Fatalf("health state = %q, want degraded on /readyz", health.State())
	}

	hresp := rawPost(t, ts.URL, Request{ID: 1, Kind: KindKernel})
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded kernel status = %d, want 503", hresp.StatusCode)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("degraded rejection missing Retry-After")
	}

	resp, status := post(t, ts.URL, Request{ID: 2, Kind: KindVerify})
	if status != http.StatusOK {
		t.Fatalf("verify under degradation: status %d", status)
	}
	if want := ReferenceDigest(8, 2, 5, 2); resp.Digest != want {
		t.Fatalf("verify digest %x, want %x", resp.Digest, want)
	}

	if st := s.Stats(); st.State != StateDegraded || st.DegradedN != 1 {
		t.Fatalf("stats = %+v, want degraded state entered once", st)
	}

	// Sustained successful admissions walk back to healthy; kernel jobs
	// come back with them.
	for id := uint64(3); id <= 5; id++ {
		if _, status := post(t, ts.URL, Request{ID: id}); status != http.StatusOK {
			t.Fatalf("recovery verify %d: status %d", id, status)
		}
	}
	if got := s.ladder.current(); got != StateHealthy {
		t.Fatalf("state after recovery = %q, want healthy", got)
	}
	if _, status := post(t, ts.URL, Request{ID: 6, Kind: KindKernel}); status != http.StatusOK {
		t.Fatalf("kernel after recovery: status %d", status)
	}
}

// TestShedCarriesRetryAfter: a queue overflow's 429 tells the client when to
// come back.
func TestShedCarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Words: 8, Epochs: 2, MaxInFlight: 1, QueueDepth: 1})
	// Fill the slot and the queue from under the handler.
	s.slots <- struct{}{}
	s.queued.Add(1)
	hresp := rawPost(t, ts.URL, Request{ID: 1})
	if hresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", hresp.StatusCode)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if s.ladder.current() != StateShedding {
		t.Fatalf("state = %q, want shedding after overflow", s.ladder.current())
	}
	s.queued.Add(-1)
	<-s.slots
}

// TestDuplicateIDConflict: an ID the journal already sealed is refused with
// 409 before consuming a slot, and the journal stays unambiguous.
func TestDuplicateIDConflict(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "dup.wal")
	s, ts := newTestServer(t, Config{Words: 8, Epochs: 2, Seed: 3, WALPath: wal})
	if _, status := post(t, ts.URL, Request{ID: 7}); status != http.StatusOK {
		t.Fatal("first request failed")
	}
	hresp := rawPost(t, ts.URL, Request{ID: 7})
	if hresp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d, want 409", hresp.StatusCode)
	}
	if _, status := post(t, ts.URL, Request{ID: 8}); status != http.StatusOK {
		t.Fatal("fresh ID after duplicate failed")
	}
	if st := s.Stats(); st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 duplicate", st)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats, err := VerifyJournal(wal)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != 2 {
		t.Fatalf("journal total = %d, want 2 (duplicate never landed)", stats.Total)
	}
}

// TestMalformedSizeCapsRejectedEarly: oversized or negative dimensions are a
// 400 before admission — no slot burned, no journal write.
func TestMalformedSizeCapsRejectedEarly(t *testing.T) {
	_, ts := newTestServer(t, Config{Words: 8, Epochs: 2})
	for _, req := range []Request{
		{ID: 1, Words: 33},  // > 4*8
		{ID: 2, Epochs: 9},  // > 4*2
		{ID: 3, Words: -1},  // negative
		{ID: 4, Epochs: -5}, // negative
	} {
		hresp := rawPost(t, ts.URL, req)
		if hresp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, want 400", req, hresp.StatusCode)
		}
	}
}
