package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDurable(t *testing.T) {
	b, err := ByName("jacobi1d")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	row, err := RunDurable(b, 0.002, 4, dir, Telemetry{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Bench != "jacobi1d" || row.Epochs != 4 {
		t.Errorf("row = %+v", row)
	}
	if row.Seals != 4 {
		t.Errorf("seals = %d, want 4", row.Seals)
	}
	if row.WALBytes <= 0 {
		t.Errorf("wal bytes = %d, want > 0", row.WALBytes)
	}
	if st, err := os.Stat(filepath.Join(dir, "jacobi1d.wal")); err != nil || st.Size() != row.WALBytes {
		t.Errorf("WAL not left in place: %v", err)
	}
	if row.Overhead <= 0 {
		t.Errorf("overhead = %v", row.Overhead)
	}
}

func TestFormatDurable(t *testing.T) {
	out := FormatDurable([]DurableRow{
		{Bench: "jacobi1d", Epochs: 4, Seals: 4, WALBytes: 1024,
			BaselineSeconds: 0.1, DurableSeconds: 0.12, Overhead: 1.2},
	})
	for _, want := range []string{"jacobi1d", "geomean", "1.200"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
