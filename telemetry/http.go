package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live telemetry endpoint behind the -serve flag: a plain
// net/http server exposing the registry as Prometheus text (/metrics), the
// flight-recorder ring (/flight and /events), the span buffer as Chrome
// trace-event JSON (/trace), liveness/readiness probes (/healthz, /readyz),
// and net/http/pprof (/debug/pprof/). Any component may be nil; its endpoint
// then reports 404.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Serve starts the endpoint on addr (host:port; port 0 picks a free port).
// It returns once the listener is bound, with requests served in the
// background; Addr reports the bound address and Close tears it down.
func Serve(addr string, reg *Registry, flight *FlightRecorder, spans *SpanBuffer, health *Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "defuse telemetry endpoints:")
		fmt.Fprintln(w, "  /metrics      Prometheus text exposition")
		fmt.Fprintln(w, "  /events       flight-recorder events (JSON)")
		fmt.Fprintln(w, "  /flight       flight-recorder ring dump (JSON)")
		fmt.Fprintln(w, "  /trace        span buffer as Chrome trace-event JSON")
		fmt.Fprintln(w, "  /healthz      liveness probe")
		fmt.Fprintln(w, "  /readyz       readiness probe (503 while draining)")
		fmt.Fprintln(w, "  /debug/pprof/ runtime profiles")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, healthzBody{Status: "ok", UptimeSeconds: health.Uptime().Seconds()})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if health == nil {
			http.NotFound(w, r)
			return
		}
		body := readyzBody{
			Ready:    health.Ready(),
			Draining: health.Draining(),
			InFlight: health.InFlight(),
			State:    health.State(),
		}
		w.Header().Set("Content-Type", "application/json")
		if !body.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		if flight == nil {
			http.NotFound(w, r)
			return
		}
		dump := FlightDump{
			Schema:  FlightDumpSchema,
			Time:    time.Now().UTC(),
			Trigger: "http",
			Entries: flight.Snapshot(),
		}
		writeJSON(w, dump)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if flight == nil {
			http.NotFound(w, r)
			return
		}
		events := []Event{}
		for _, e := range flight.Snapshot() {
			if e.Kind == "event" && e.Event != nil {
				events = append(events, *e.Event)
			}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if spans == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = spans.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, mux: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers an additional handler on the telemetry mux, letting a
// service mount its own routes (e.g. defused's /run and /stats) on the same
// port as /metrics and the probes. ServeMux registration is mutex-protected,
// so this is safe while the server is live; register before advertising
// readiness to avoid a window of 404s.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
