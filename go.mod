module defuse

go 1.22
