package server

import (
	"context"
	"fmt"

	"defuse/internal/bench"
	"defuse/rt"
	"defuse/telemetry"
)

// Pools hand out exclusive detector state per request. Concurrent requests
// must never share a tracker: EndEpoch drains every live shard into the
// root, so two interleaved requests on one tracker would fold each other's
// words into a common checksum and produce spurious mismatches. "Pooled"
// therefore means reused across requests, never shared within one — a
// request checks a tracker out, runs its epochs, and the pool recycles it
// (Recycle discards residue; nothing leaks between requests).

// trackerPool is a fixed-size free list of sharded trackers.
type trackerPool struct {
	ch chan *rt.ShardedTracker
}

func newTrackerPool(n int, sink telemetry.Sink, reg *telemetry.Registry) *trackerPool {
	p := &trackerPool{ch: make(chan *rt.ShardedTracker, n)}
	for i := 0; i < n; i++ {
		p.ch <- rt.NewSharded().SetTelemetry(sink, reg)
	}
	return p
}

// get blocks until a tracker is free or ctx is done. Admission control caps
// in-flight requests at the pool size, so under normal operation get returns
// immediately.
func (p *trackerPool) get(ctx context.Context) (*rt.ShardedTracker, error) {
	select {
	case t := <-p.ch:
		return t, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// put recycles the tracker and returns it to the free list.
func (p *trackerPool) put(t *rt.ShardedTracker) {
	t.Recycle()
	p.ch <- t
}

// kernelPool is a fixed-size free list of preloaded kernel runners, all for
// the same benchmark. Building a runner parses and instruments the program
// and allocates its memory image, so the pool pays that cost n times at
// startup instead of per request.
type kernelPool struct {
	ch  chan *kernelRunner
	ref uint64 // warmup reference digest, shared by every runner
}

func newKernelPool(ctx context.Context, name string, scale float64, n int, tel bench.Telemetry) (*kernelPool, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	p := &kernelPool{ch: make(chan *kernelRunner, n)}
	for i := 0; i < n; i++ {
		kr, err := newKernelRunner(b, scale, tel)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// One warmup run establishes the reference digest every request
			// must reproduce — and proves the instrumented kernel verifies
			// cleanly before the service advertises readiness.
			ref, werr := kr.warmup(ctx)
			if werr != nil {
				return nil, werr
			}
			p.ref = ref
		}
		p.ch <- kr
	}
	return p, nil
}

func (p *kernelPool) get(ctx context.Context) (*kernelRunner, error) {
	if p == nil {
		return nil, fmt.Errorf("server: no kernel configured")
	}
	select {
	case kr := <-p.ch:
		return kr, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *kernelPool) put(kr *kernelRunner) {
	kr.reset()
	p.ch <- kr
}
