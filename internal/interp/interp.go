// Package interp executes lang programs against a simulated memory
// subsystem (memsim) under the paper's fault model: loop iterators and
// parameters are register-resident (control flow is protected by other
// means, Section 2.2), while every scalar and array element lives in
// vulnerable memory. The checksum primitives of the language drive a
// checksum.Pair, and per-operation accounting supports the hardware
// checksum-unit cost model of Section 6.2.2.
package interp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"defuse/internal/addrsum"
	"defuse/internal/checksum"
	"defuse/internal/lang"
	"defuse/internal/memsim"
	"defuse/telemetry"
)

// OpCounts tallies dynamic operations, separating checksum-instrumentation
// work from program work so the hardware-support estimate can discount it.
type OpCounts struct {
	Loads    uint64 // program loads
	Stores   uint64 // program stores
	Arith    uint64 // arithmetic/intrinsic operations
	Compare  uint64 // comparisons and logical operations
	CsOps    uint64 // add_to_chksm executions (each a scale+combine)
	CsLoads  uint64 // loads performed to feed checksum operations
	CsArith  uint64 // arithmetic inside checksum count expressions
	Branches uint64 // if/while condition evaluations
	Stmts    uint64 // statements executed
}

// Total returns the total dynamic operation count including checksum work.
func (c OpCounts) Total() uint64 {
	return c.Loads + c.Stores + c.Arith + c.Compare + c.CsOps + c.CsLoads + c.CsArith + c.Branches
}

// RuntimeError reports an execution failure (bounds, division by zero, ...).
type RuntimeError struct {
	Pos lang.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("interp: %s: %s", e.Pos, e.Msg) }

// DetectionError reports that assert_checksums() detected a memory error.
type DetectionError struct {
	Pos lang.Pos
	Err error // the underlying *checksum.MismatchError
}

func (e *DetectionError) Error() string {
	return fmt.Sprintf("interp: %s: %v", e.Pos, e.Err)
}

func (e *DetectionError) Unwrap() error { return e.Err }

// CancelError reports that execution was abandoned because the machine's
// context was cancelled (deadline exceeded or caller shutdown). It unwraps to
// the context error, so errors.Is(err, context.DeadlineExceeded) works and
// recovery's DefaultClassify treats it as terminal rather than as a
// detectable memory fault.
type CancelError struct {
	Pos lang.Pos
	Err error
}

func (e *CancelError) Error() string { return fmt.Sprintf("interp: %s: cancelled: %v", e.Pos, e.Err) }

func (e *CancelError) Unwrap() error { return e.Err }

// ctxCheckInterval is how many executed statements pass between context
// polls. Polling every statement would put an atomic load on the hottest
// path; every 256th statement bounds cancellation latency to microseconds
// while keeping the overhead unmeasurable.
const ctxCheckInterval = 256

// varInfo locates a program variable in simulated memory.
type varInfo struct {
	decl   *lang.VarDecl
	region memsim.Region
	dims   []int64 // concrete dimension sizes
}

// Machine executes one program instance.
type Machine struct {
	prog   *lang.Program
	mem    *memsim.Memory
	params map[string]int64
	vars   map[string]*varInfo
	iters  map[string]int64
	pair   *checksum.Pair

	// Counts accumulates dynamic operation counts across Run calls.
	Counts OpCounts

	// MaxSteps bounds the number of executed statements (guards against
	// non-converging while loops). Zero means the default of 500M.
	MaxSteps uint64

	stepHook   func(step uint64)
	inChecksum bool

	ctx      context.Context
	ctxCheck uint64 // statement count at which to poll ctx next

	trace   telemetry.Sink
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer

	// addr, when non-nil, receives the (intent, effective) index pair of
	// every memory access the program performs — the instrumenter's data
	// checksums and the address-stream checksums are emitted side by side.
	addr *addrsum.Tracker
	// basePad shifts every array's base address by allocating unused guard
	// words first; internal/dme runs two machines with different pads so a
	// physical-address fault lands at different logical coordinates.
	basePad int
}

// Option configures a Machine.
type Option func(*Machine)

// WithChecksumKind selects the checksum operator (default ModAdd).
func WithChecksumKind(k checksum.Kind) Option {
	return func(m *Machine) { m.pair = checksum.NewPair(k) }
}

// WithMaxSteps bounds statement execution.
func WithMaxSteps(n uint64) Option {
	return func(m *Machine) { m.MaxSteps = n }
}

// WithTrace streams execution events (fault.injected with bit/word
// coordinates, detection, verify.ok/mismatch) to s.
func WithTrace(s telemetry.Sink) Option {
	return func(m *Machine) { m.trace = s }
}

// WithMetrics publishes dynamic operation counts and verification outcomes
// into r after each Run.
func WithMetrics(r *telemetry.Registry) Option {
	return func(m *Machine) { m.metrics = r }
}

// WithTracer records causally linked spans for supervised execution: a root
// "run" span per Supervise call with per-epoch-attempt, verification,
// recovery, and WAL children. A nil tracer costs nothing.
func WithTracer(t *telemetry.Tracer) Option {
	return func(m *Machine) { m.tracer = t }
}

// WithAddrStream folds every memory access's (intended, effective) address
// pair into at, emitting the PRESAGE-style address-stream checksums
// alongside the program's data checksums. The caller verifies at at its
// chosen boundaries (at.Verify / at.EndEpoch).
func WithAddrStream(at *addrsum.Tracker) Option {
	return func(m *Machine) { m.addr = at }
}

// WithBaseOffset shifts every declared array's base address by pad unused
// words. Two machines running the same program with different offsets are
// structurally decorrelated: a fault at one physical address corrupts
// different logical elements in each, which is what lets internal/dme
// cross-check them.
func WithBaseOffset(pad int) Option {
	return func(m *Machine) { m.basePad = pad }
}

// New builds a machine for prog with the given integer parameter values,
// type-checking the program and allocating all declared variables.
func New(prog *lang.Program, params map[string]int64, opts ...Option) (*Machine, error) {
	if err := lang.Check(prog); err != nil {
		return nil, err
	}
	m := &Machine{
		prog:   prog,
		params: map[string]int64{},
		vars:   map[string]*varInfo{},
		iters:  map[string]int64{},
		pair:   checksum.NewPair(checksum.ModAdd),
		mem:    memsim.New(0),
	}
	for _, p := range prog.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("interp: parameter %q not supplied", p)
		}
		m.params[p] = v
	}
	for _, opt := range opts {
		opt(m)
	}
	alloc := memsim.NewAllocator(m.mem)
	if m.basePad > 0 {
		alloc.Alloc(m.basePad)
	}
	for _, d := range prog.Decls {
		vi := &varInfo{decl: d}
		size := int64(1)
		for _, dim := range d.Dims {
			dv, err := m.evalInt(dim)
			if err != nil {
				return nil, fmt.Errorf("interp: sizing %q: %w", d.Name, err)
			}
			if dv < 0 {
				return nil, fmt.Errorf("interp: array %q has negative dimension %d", d.Name, dv)
			}
			vi.dims = append(vi.dims, dv)
			size *= dv
		}
		vi.region = alloc.Alloc(int(size))
		m.vars[d.Name] = vi
	}
	if m.addr != nil {
		at := m.addr
		m.mem.SetAccessHook(func(store bool, intent, effective int) {
			if store {
				at.Store(intent, effective)
			} else {
				at.Load(intent, effective)
			}
		})
	}
	if m.trace != nil {
		// Stream every bit flip the harness injects, with both the raw
		// word address and the owning array's coordinates.
		m.mem.SetFaultHook(func(addr, bit int) {
			fields := map[string]any{"addr": addr, "bit": bit}
			if name, idx, ok := m.varAt(addr); ok {
				fields["array"] = name
				fields["index"] = idx
			}
			telemetry.Emit(m.trace, telemetry.EvFaultInjected, fields)
		})
	}
	return m, nil
}

// varAt reverse-maps a word address to the owning variable and flat index.
func (m *Machine) varAt(addr int) (name string, index int, ok bool) {
	for n, vi := range m.vars {
		if addr >= vi.region.Base && addr < vi.region.Base+vi.region.Size {
			return n, addr - vi.region.Base, true
		}
	}
	return "", 0, false
}

// Mem exposes the simulated memory (for fault injection).
func (m *Machine) Mem() *memsim.Memory { return m.mem }

// Pair exposes the checksum accumulators.
func (m *Machine) Pair() *checksum.Pair { return m.pair }

// Addr exposes the address-stream tracker armed via WithAddrStream, or nil.
func (m *Machine) Addr() *addrsum.Tracker { return m.addr }

// SetStepHook installs a callback invoked before each executed statement
// with the running statement count; fault-injection experiments use it to
// corrupt memory at a chosen point.
func (m *Machine) SetStepHook(h func(step uint64)) { m.stepHook = h }

// SetContext arms (or, with nil, disarms) deadline/cancellation propagation:
// execution polls ctx every ctxCheckInterval statements and aborts with a
// *CancelError once it is done. A service uses this to put a hard per-request
// deadline on kernel execution without trusting the kernel to terminate.
func (m *Machine) SetContext(ctx context.Context) {
	m.ctx = ctx
	m.ctxCheck = 0
}

// Reset returns a pooled machine to its post-New state so it can be reused
// for a fresh request: memory zeroed, checksum accumulators re-derived,
// iterators, operation counts, hooks, and context cleared. The program,
// parameter bindings, and variable layout are preserved — Reset does not
// re-run initialization, the next user does.
func (m *Machine) Reset() {
	m.mem.Zero()
	m.mem.SetLoadHook(nil)
	m.mem.SetRedirect(nil)
	m.pair.Reset()
	if m.addr != nil {
		m.addr.Reset()
	}
	for k := range m.iters {
		delete(m.iters, k)
	}
	m.Counts = OpCounts{}
	m.stepHook = nil
	m.inChecksum = false
	m.ctx = nil
	m.ctxCheck = 0
}

// addrOf resolves a variable reference to a memory address.
func (m *Machine) addrOf(r *lang.Ref) (int, error) {
	vi := m.vars[r.Name]
	if vi == nil {
		return 0, &RuntimeError{Pos: r.Pos, Msg: fmt.Sprintf("unknown variable %q", r.Name)}
	}
	addr := int64(0)
	for k, ixExpr := range r.Indices {
		ix, err := m.evalInt(ixExpr)
		if err != nil {
			return 0, err
		}
		if ix < 0 || ix >= vi.dims[k] {
			return 0, &RuntimeError{Pos: r.Pos, Msg: fmt.Sprintf(
				"index %d out of bounds [0,%d) in dimension %d of %q", ix, vi.dims[k], k, r.Name)}
		}
		addr = addr*vi.dims[k] + ix
	}
	return vi.region.Base + int(addr), nil
}

// value is a runtime value: integer or float.
type value struct {
	isInt bool
	i     int64
	f     float64
}

func intVal(i int64) value     { return value{isInt: true, i: i} }
func floatVal(f float64) value { return value{f: f} }

func (v value) toFloat() float64 {
	if v.isInt {
		return float64(v.i)
	}
	return v.f
}

// bits returns the raw pattern the checksum scheme protects.
func (v value) bits() uint64 {
	if v.isInt {
		return uint64(v.i)
	}
	return math.Float64bits(v.f)
}

func (v value) truthy() bool {
	if v.isInt {
		return v.i != 0
	}
	return v.f != 0
}

// Run executes the program body. It returns a *DetectionError if a checksum
// assertion fired, a *RuntimeError for execution faults, or nil.
func (m *Machine) Run() error {
	err := m.execStmts(m.prog.Body, m.stepBudget())
	m.publishMetrics()
	return err
}

// stepBudget returns the effective statement limit.
func (m *Machine) stepBudget() uint64 {
	if m.MaxSteps == 0 {
		return 500_000_000
	}
	return m.MaxSteps
}

// publishMetrics exports the cumulative dynamic operation counts as gauges
// (Counts accumulates across Run calls, so gauges rather than counters).
func (m *Machine) publishMetrics() {
	if m.metrics == nil {
		return
	}
	c := m.Counts
	for _, kv := range []struct {
		op string
		v  uint64
	}{
		{"loads", c.Loads}, {"stores", c.Stores}, {"arith", c.Arith},
		{"compare", c.Compare}, {"cs_ops", c.CsOps}, {"cs_loads", c.CsLoads},
		{"cs_arith", c.CsArith}, {"branches", c.Branches}, {"stmts", c.Stmts},
	} {
		m.metrics.Gauge("defuse_interp_ops",
			telemetry.Label{Key: "op", Value: kv.op}).Set(float64(kv.v))
	}
}

func (m *Machine) execStmts(ss []lang.Stmt, max uint64) error {
	for _, s := range ss {
		if err := m.execStmt(s, max); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) execStmt(s lang.Stmt, max uint64) error {
	m.Counts.Stmts++
	if m.Counts.Stmts > max {
		return &RuntimeError{Pos: s.StmtPos(), Msg: fmt.Sprintf("step limit %d exceeded", max)}
	}
	if m.ctx != nil && m.Counts.Stmts >= m.ctxCheck {
		m.ctxCheck = m.Counts.Stmts + ctxCheckInterval
		if err := m.ctx.Err(); err != nil {
			return &CancelError{Pos: s.StmtPos(), Err: err}
		}
	}
	if m.stepHook != nil {
		m.stepHook(m.Counts.Stmts)
	}
	switch x := s.(type) {
	case *lang.Assign:
		return m.execAssign(x)
	case *lang.For:
		lo, err := m.evalInt(x.Lo)
		if err != nil {
			return err
		}
		hi, err := m.evalInt(x.Hi)
		if err != nil {
			return err
		}
		for i := lo; i <= hi; i++ {
			m.iters[x.Iter] = i
			if err := m.execStmts(x.Body, max); err != nil {
				delete(m.iters, x.Iter)
				return err
			}
		}
		delete(m.iters, x.Iter)
		return nil
	case *lang.While:
		for {
			m.Counts.Branches++
			cond, err := m.eval(x.Cond)
			if err != nil {
				return err
			}
			if !cond.truthy() {
				return nil
			}
			if err := m.execStmts(x.Body, max); err != nil {
				return err
			}
		}
	case *lang.If:
		m.Counts.Branches++
		cond, err := m.eval(x.Cond)
		if err != nil {
			return err
		}
		if cond.truthy() {
			return m.execStmts(x.Then, max)
		}
		return m.execStmts(x.Else, max)
	case *lang.AddToChecksum:
		return m.execChecksum(x)
	case *lang.AssertChecksums:
		if err := m.pair.Verify(); err != nil {
			m.emitVerify(err)
			return &DetectionError{Pos: x.Pos, Err: err}
		}
		m.emitVerify(nil)
		return nil
	}
	return &RuntimeError{Pos: s.StmtPos(), Msg: fmt.Sprintf("unknown statement %T", s)}
}

// emitVerify streams the outcome of a checksum verification: verify.ok on a
// match, verify.mismatch plus a detection event (with the mismatching pair
// and both values) on a caught memory error.
func (m *Machine) emitVerify(err error) {
	if m.trace == nil && m.metrics == nil {
		return
	}
	if err == nil {
		telemetry.Emit(m.trace, telemetry.EvVerifyOK, map[string]any{
			"def": m.pair.Def, "use": m.pair.Use,
			"e_def": m.pair.EDef, "e_use": m.pair.EUse,
		})
		m.metrics.Counter("defuse_verifications_total",
			telemetry.Label{Key: "result", Value: "ok"}).Inc()
		return
	}
	fields := map[string]any{"error": err.Error()}
	var mm *checksum.MismatchError
	if errors.As(err, &mm) {
		fields["which"] = mm.Which
		fields["expected"] = mm.Expected
		fields["observed"] = mm.Observed
	}
	telemetry.Emit(m.trace, telemetry.EvVerifyMismatch, fields)
	telemetry.Emit(m.trace, telemetry.EvDetection, fields)
	m.metrics.Counter("defuse_verifications_total",
		telemetry.Label{Key: "result", Value: "mismatch"}).Inc()
	m.metrics.Counter("defuse_detections_total").Inc()
}

func (m *Machine) execAssign(x *lang.Assign) error {
	rhs, err := m.eval(x.RHS)
	if err != nil {
		return err
	}
	addr, err := m.addrOf(x.LHS)
	if err != nil {
		return err
	}
	vi := m.vars[x.LHS.Name]
	var out value
	if x.Op == lang.OpSet {
		out = rhs
	} else {
		cur := m.loadVar(vi, addr)
		m.Counts.Arith++
		switch x.Op {
		case lang.OpAdd:
			out = numOp(cur, rhs, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
		case lang.OpSub:
			out = numOp(cur, rhs, func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b })
		case lang.OpMul:
			out = numOp(cur, rhs, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
		case lang.OpDiv:
			if (rhs.isInt && cur.isInt && rhs.i == 0) || (!(rhs.isInt && cur.isInt) && rhs.toFloat() == 0) {
				return &RuntimeError{Pos: x.Pos, Msg: "division by zero"}
			}
			out = numOp(cur, rhs, func(a, b int64) int64 { return a / b }, func(a, b float64) float64 { return a / b })
		}
	}
	m.storeVar(vi, addr, out, x.Pos)
	return nil
}

// loadVar loads and decodes a variable's value.
func (m *Machine) loadVar(vi *varInfo, addr int) value {
	raw := m.mem.Load(addr)
	if m.inChecksum {
		m.Counts.CsLoads++
	} else {
		m.Counts.Loads++
	}
	if vi.decl.Type == lang.TypeInt {
		return intVal(int64(raw))
	}
	return floatVal(math.Float64frombits(raw))
}

// storeVar encodes and stores a value into a variable.
func (m *Machine) storeVar(vi *varInfo, addr int, v value, pos lang.Pos) {
	var raw uint64
	if vi.decl.Type == lang.TypeInt {
		if v.isInt {
			raw = uint64(v.i)
		} else {
			raw = uint64(int64(v.f))
		}
	} else {
		raw = math.Float64bits(v.toFloat())
	}
	m.mem.Store(addr, raw)
	m.Counts.Stores++
}

func (m *Machine) execChecksum(x *lang.AddToChecksum) error {
	m.inChecksum = true
	val, err := m.eval(x.Value)
	if err != nil {
		m.inChecksum = false
		return err
	}
	arithBefore := m.Counts.Arith
	cnt, err := m.evalInt(x.Count)
	m.Counts.CsArith += m.Counts.Arith - arithBefore
	m.Counts.Arith = arithBefore
	m.inChecksum = false
	if err != nil {
		return err
	}
	m.Counts.CsOps++
	bits := val.bits()
	// Fold through ScaleFold so the Pair's redundant shadow copies stay in
	// step; writing the exported fields directly would strand the shadows
	// and make every later Scrub report a phantom detector fault.
	switch x.CS {
	case lang.DefCS:
		m.pair.ScaleFold(checksum.AccDef, bits, cnt)
	case lang.UseCS:
		m.pair.ScaleFold(checksum.AccUse, bits, cnt)
	case lang.EDefCS:
		m.pair.ScaleFold(checksum.AccEDef, bits, cnt)
	case lang.EUseCS:
		m.pair.ScaleFold(checksum.AccEUse, bits, cnt)
	}
	return nil
}

func numOp(a, b value, fi func(int64, int64) int64, ff func(float64, float64) float64) value {
	if a.isInt && b.isInt {
		return intVal(fi(a.i, b.i))
	}
	return floatVal(ff(a.toFloat(), b.toFloat()))
}

func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

func (m *Machine) eval(e lang.Expr) (value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return intVal(x.Val), nil
	case *lang.FloatLit:
		return floatVal(x.Val), nil
	case *lang.Ref:
		if v, ok := m.iters[x.Name]; ok && len(x.Indices) == 0 {
			return intVal(v), nil // register-resident iterator
		}
		if v, ok := m.params[x.Name]; ok && len(x.Indices) == 0 {
			return intVal(v), nil // register-resident parameter
		}
		addr, err := m.addrOf(x)
		if err != nil {
			return value{}, err
		}
		return m.loadVar(m.vars[x.Name], addr), nil
	case *lang.Bin:
		return m.evalBin(x)
	case *lang.Un:
		v, err := m.eval(x.X)
		if err != nil {
			return value{}, err
		}
		m.Counts.Arith++
		if x.Op == lang.UnNot {
			return boolVal(!v.truthy()), nil
		}
		if v.isInt {
			return intVal(-v.i), nil
		}
		return floatVal(-v.f), nil
	case *lang.Call:
		args := make([]value, len(x.Args))
		for i, a := range x.Args {
			v, err := m.eval(a)
			if err != nil {
				return value{}, err
			}
			args[i] = v
		}
		m.Counts.Arith++
		switch x.Name {
		case "sqrt":
			return floatVal(math.Sqrt(args[0].toFloat())), nil
		case "abs":
			if args[0].isInt {
				if args[0].i < 0 {
					return intVal(-args[0].i), nil
				}
				return args[0], nil
			}
			return floatVal(math.Abs(args[0].f)), nil
		case "min":
			return numOp(args[0], args[1], minI, math.Min), nil
		case "max":
			return numOp(args[0], args[1], maxI, math.Max), nil
		}
		return value{}, &RuntimeError{Pos: x.Pos, Msg: "unknown intrinsic " + x.Name}
	}
	return value{}, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (m *Machine) evalBin(x *lang.Bin) (value, error) {
	// Short-circuit logical operators.
	if x.Op == lang.BinAnd || x.Op == lang.BinOr {
		l, err := m.eval(x.L)
		if err != nil {
			return value{}, err
		}
		m.Counts.Compare++
		if x.Op == lang.BinAnd && !l.truthy() {
			return boolVal(false), nil
		}
		if x.Op == lang.BinOr && l.truthy() {
			return boolVal(true), nil
		}
		r, err := m.eval(x.R)
		if err != nil {
			return value{}, err
		}
		return boolVal(r.truthy()), nil
	}

	l, err := m.eval(x.L)
	if err != nil {
		return value{}, err
	}
	r, err := m.eval(x.R)
	if err != nil {
		return value{}, err
	}
	if x.Op.IsComparison() {
		m.Counts.Compare++
		if l.isInt && r.isInt {
			return boolVal(cmpI(x.Op, l.i, r.i)), nil
		}
		return boolVal(cmpF(x.Op, l.toFloat(), r.toFloat())), nil
	}
	m.Counts.Arith++
	switch x.Op {
	case lang.BinAdd:
		return numOp(l, r, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b }), nil
	case lang.BinSub:
		return numOp(l, r, func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b }), nil
	case lang.BinMul:
		return numOp(l, r, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b }), nil
	case lang.BinDiv:
		if l.isInt && r.isInt {
			if r.i == 0 {
				return value{}, &RuntimeError{Pos: x.Pos, Msg: "division by zero"}
			}
			return intVal(l.i / r.i), nil
		}
		if r.toFloat() == 0 {
			return value{}, &RuntimeError{Pos: x.Pos, Msg: "division by zero"}
		}
		return floatVal(l.toFloat() / r.toFloat()), nil
	case lang.BinMod:
		if !l.isInt || !r.isInt {
			return value{}, &RuntimeError{Pos: x.Pos, Msg: "%% requires integer operands"}
		}
		if r.i == 0 {
			return value{}, &RuntimeError{Pos: x.Pos, Msg: "modulo by zero"}
		}
		return intVal(l.i % r.i), nil
	}
	return value{}, &RuntimeError{Pos: x.Pos, Msg: "unknown operator " + x.Op.String()}
}

func cmpI(op lang.BinOp, a, b int64) bool {
	switch op {
	case lang.BinEq:
		return a == b
	case lang.BinNe:
		return a != b
	case lang.BinLt:
		return a < b
	case lang.BinLe:
		return a <= b
	case lang.BinGt:
		return a > b
	default:
		return a >= b
	}
}

func cmpF(op lang.BinOp, a, b float64) bool {
	switch op {
	case lang.BinEq:
		return a == b
	case lang.BinNe:
		return a != b
	case lang.BinLt:
		return a < b
	case lang.BinLe:
		return a <= b
	case lang.BinGt:
		return a > b
	default:
		return a >= b
	}
}

// evalInt evaluates an expression required to be integral.
func (m *Machine) evalInt(e lang.Expr) (int64, error) {
	v, err := m.eval(e)
	if err != nil {
		return 0, err
	}
	if !v.isInt {
		return 0, &RuntimeError{Pos: e.ExprPos(), Msg: "expected integer value"}
	}
	return v.i, nil
}
