package recovery

import (
	"context"
	"errors"
	"testing"
	"time"

	"defuse/rt"
)

// Satellite coverage for the supervisor's backoff timing: the schedule is
// asserted through the Policy.Sleep injection point, so no test ever sleeps.

func detectorFault() error {
	return &rt.DetectorFaultError{Part: "accumulator", Err: errors.New("diverged")}
}

func TestBackoffScheduleIsExponential(t *testing.T) {
	// Epoch 1 fails four times, then succeeds: the three allowed retries must
	// sleep Backoff, Backoff*Factor, Backoff*Factor^2... and the fourth
	// failure escalates to a restart, which sleeps nothing.
	s := &simState{}
	fails := 0
	cfg := harness(s, 3, func(k int) error {
		if k == 1 && fails < 4 {
			fails++
			return mismatch()
		}
		return nil
	})
	var slept []time.Duration
	cfg.Policy = Policy{
		MaxRetries:    3,
		MaxRestarts:   1,
		Backoff:       10 * time.Millisecond,
		BackoffFactor: 3,
		Sleep:         func(d time.Duration) { slept = append(slept, d) },
	}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
	}
	if o.Restarts != 1 || !o.Recovered {
		t.Errorf("Restarts=%d Recovered=%v, want escalation to one restart then recovery", o.Restarts, o.Recovered)
	}
}

func TestBackoffFactorBelowOneDefaultsToDoubling(t *testing.T) {
	s := &simState{}
	fails := 0
	cfg := harness(s, 2, func(k int) error {
		if k == 0 && fails < 2 {
			fails++
			return mismatch()
		}
		return nil
	})
	var slept []time.Duration
	cfg.Policy = Policy{
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		// BackoffFactor left 0: the documented default of 2 applies.
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if _, err := Supervise(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("slept %v, want [1ms 2ms]", slept)
	}
}

func TestZeroBackoffNeverSleeps(t *testing.T) {
	s := &simState{}
	fails := 0
	cfg := harness(s, 2, func(k int) error {
		if fails < 3 {
			fails++
			return mismatch()
		}
		return nil
	})
	cfg.Policy = Policy{
		MaxRetries: 3,
		Sleep:      func(time.Duration) { t.Fatal("slept with zero Backoff") },
	}
	if _, err := Supervise(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancellationMidBackoff(t *testing.T) {
	// The fault persists; the context is cancelled while the supervisor is
	// sleeping between retries. The next loop iteration must observe the
	// cancellation and surface it instead of retrying forever.
	s := &simState{}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := harness(s, 2, func(k int) error { return mismatch() })
	var slept []time.Duration
	cfg.Policy = Policy{
		MaxRetries:  10,
		MaxRestarts: 1,
		Backoff:     time.Millisecond,
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			cancel() // the interrupt arrives mid-pause
		},
	}
	_, err := Supervise(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times after cancellation, want exactly 1", len(slept))
	}
}

func TestDetectorRetriesSkipBackoff(t *testing.T) {
	// A detector fault means the data is presumed fine: the rebuild retry is
	// documented to run immediately, with no backoff pause.
	s := &simState{}
	fails := 0
	cfg := harness(s, 3, func(k int) error {
		if k == 1 && fails < 2 {
			fails++
			return detectorFault()
		}
		return nil
	})
	rebuilds := 0
	restore := cfg.Restore
	cfg.RebuildDetector = func(snap any) error { rebuilds++; return restore(snap) }
	cfg.Policy = Policy{
		MaxRetries: 3,
		Backoff:    time.Second,
		Sleep:      func(time.Duration) { t.Fatal("detector retry slept") },
	}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Rebuilds != 2 || rebuilds != 2 {
		t.Errorf("Rebuilds = %d (hook %d), want 2", o.Rebuilds, rebuilds)
	}
	if o.DetectorFaults != 2 || !o.Recovered {
		t.Errorf("DetectorFaults=%d Recovered=%v", o.DetectorFaults, o.Recovered)
	}
}

func TestMixedFaultsOnlyDataRetriesSleep(t *testing.T) {
	// Alternating detector and data faults in one epoch: only the data-fault
	// retries contribute to the backoff schedule, and the schedule still
	// escalates geometrically across them.
	s := &simState{}
	seq := []error{detectorFault(), mismatch(), detectorFault(), mismatch()}
	i := 0
	cfg := harness(s, 1, func(k int) error {
		if i < len(seq) {
			err := seq[i]
			i++
			return err
		}
		return nil
	})
	var slept []time.Duration
	cfg.Policy = Policy{
		MaxRetries:    len(seq),
		Backoff:       4 * time.Millisecond,
		BackoffFactor: 2,
		Sleep:         func(d time.Duration) { slept = append(slept, d) },
	}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != 4*time.Millisecond || slept[1] != 8*time.Millisecond {
		t.Fatalf("slept %v, want [4ms 8ms] (detector retries must not sleep or advance the schedule)", slept)
	}
	if o.Rebuilds != 2 || o.Retries != 4 {
		t.Errorf("Rebuilds=%d Retries=%d, want 2/4", o.Rebuilds, o.Retries)
	}
}

func TestStartEpochSkipsCompletedWork(t *testing.T) {
	s := &simState{}
	cfg := harness(s, 5, nil)
	cfg.StartEpoch = 3
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{3, 4}; len(s.runs) != 2 || s.runs[0] != want[0] || s.runs[1] != want[1] {
		t.Fatalf("runs = %v, want %v", s.runs, want)
	}
	if o.Tainted || o.Detected {
		t.Errorf("outcome = %+v", o)
	}
	// StartEpoch == Epochs runs nothing; out of range is rejected.
	s2 := &simState{}
	cfg2 := harness(s2, 5, nil)
	cfg2.StartEpoch = 5
	if _, err := Supervise(context.Background(), cfg2); err != nil || len(s2.runs) != 0 {
		t.Errorf("StartEpoch==Epochs: err=%v runs=%v", err, s2.runs)
	}
	cfg2.StartEpoch = 6
	if _, err := Supervise(context.Background(), cfg2); err == nil {
		t.Error("StartEpoch > Epochs accepted")
	}
	cfg2.StartEpoch = -1
	if _, err := Supervise(context.Background(), cfg2); err == nil {
		t.Error("negative StartEpoch accepted")
	}
}

func TestRestartReturnsToStartEpoch(t *testing.T) {
	// With StartEpoch set, a full restart must rewind to the start epoch's
	// entry state — the initial checkpoint is taken after the resume — not to
	// an epoch the process never ran.
	s := &simState{value: 30} // resumed state: epochs 0-2 already counted
	fails := 0
	cfg := harness(s, 5, func(k int) error {
		if k == 4 && fails < 3 {
			fails++
			return mismatch()
		}
		return nil
	})
	cfg.StartEpoch = 3
	cfg.Policy = Policy{MaxRetries: 1, MaxRestarts: 1}
	// Retry exhausts at epoch 4 (persistent until the 3rd failure), restart
	// rewinds to the initial checkpoint = value 30, then the run completes.
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", o.Restarts)
	}
	if s.value != 32 {
		t.Errorf("final value = %d, want 32 (30 resumed + epochs 3,4)", s.value)
	}
	for _, k := range s.runs {
		if k < 3 {
			t.Fatalf("restart ran epoch %d below StartEpoch: %v", k, s.runs)
		}
	}
	if !o.Recovered {
		t.Errorf("outcome = %+v", o)
	}
}

func TestCommitCalledOnlyOnVerifiedEpochs(t *testing.T) {
	s := &simState{}
	fails := 0
	cfg := harness(s, 4, func(k int) error {
		if k == 1 && fails < 1 {
			fails++
			return mismatch()
		}
		return nil
	})
	var committed []int
	cfg.Commit = func(k int) error { committed = append(committed, k); return nil }
	cfg.Policy = Policy{MaxRetries: 2}
	if _, err := Supervise(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3}; len(committed) != len(want) {
		t.Fatalf("committed %v, want %v", committed, want)
	}
	for i, k := range committed {
		if k != i {
			t.Fatalf("committed %v out of order", committed)
		}
	}
}

func TestCommitFailureIsTerminal(t *testing.T) {
	s := &simState{}
	cfg := harness(s, 4, nil)
	sentinel := errors.New("disk full")
	cfg.Commit = func(k int) error {
		if k == 2 {
			return sentinel
		}
		return nil
	}
	_, err := Supervise(context.Background(), cfg)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the commit failure", err)
	}
	if len(s.runs) != 3 {
		t.Errorf("runs = %v, want exactly epochs 0-2", s.runs)
	}
}

func TestDegradedEpochIsNotCommitted(t *testing.T) {
	// Retries and restarts exhausted at epoch 1: the run degrades and epoch 1
	// completes unverified. That epoch must never be committed — a durable
	// record implies a verified boundary.
	s := &simState{}
	cfg := harness(s, 3, func(k int) error {
		if k == 1 {
			return mismatch() // persistent: never verifies
		}
		return nil
	})
	var committed []int
	cfg.Commit = func(k int) error { committed = append(committed, k); return nil }
	cfg.Policy = Policy{MaxRetries: 1, MaxRestarts: 0}
	o, err := Supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Tainted {
		t.Fatal("run did not degrade")
	}
	for _, k := range committed {
		if k == 1 {
			t.Fatalf("unverified epoch 1 was committed: %v", committed)
		}
	}
}
