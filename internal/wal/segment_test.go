package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// payloadN builds a recognizable fixed-size payload.
func payloadN(i int) []byte {
	return []byte(fmt.Sprintf("record-%06d--------------------------------", i))
}

func segAppend(t *testing.T, l *SegmentedLog, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func segFiles(t *testing.T, path string) []string {
	t.Helper()
	names, err := filepath.Glob(path + segmentPattern)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestSegmentRotationBoundsEachFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	const segBytes = 256
	l, err := CreateSegmented(path, SegmentOptions{SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	segAppend(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names := segFiles(t, path)
	if len(names) < 2 {
		t.Fatalf("want multiple sealed segments, got %v", names)
	}
	for _, name := range append(names, path) {
		fi, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > segBytes {
			t.Errorf("%s is %d bytes, above the %d threshold", name, fi.Size(), segBytes)
		}
	}

	// Recovery resumes across segment boundaries: all 40 records, in order.
	s, err := RecoverSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records) != 40 {
		t.Fatalf("recovered %d records, want 40", len(s.Records))
	}
	for i, r := range s.Records {
		if string(r.Payload) != string(payloadN(i)) {
			t.Fatalf("record %d = %q", i, r.Payload)
		}
		if r.Seq != uint32(i) {
			t.Fatalf("record %d has seq %d — numbering must continue across seals", i, r.Seq)
		}
	}
}

func TestSegmentCompactionBoundsDiskAndKeepsSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	const segBytes, maxSegs = 256, 3
	var summarizeCalls int
	opts := SegmentOptions{
		SegmentBytes: segBytes,
		MaxSegments:  maxSegs,
		Summarize: func(prev [][]byte, folded []Record) ([][]byte, error) {
			summarizeCalls++
			// Running count in a tiny payload plus the newest folded record.
			count := len(folded)
			if len(prev) > 0 {
				fmt.Sscanf(string(prev[0]), "count=%d", &count)
				count += len(folded)
			}
			return [][]byte{
				[]byte(fmt.Sprintf("count=%d", count)),
				folded[len(folded)-1].Payload,
			}, nil
		},
	}
	l, err := CreateSegmented(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	segAppend(t, l, 0, 200)
	if got := len(segFiles(t, path)); got > maxSegs {
		t.Errorf("%d sealed segments on disk, want <= %d", got, maxSegs)
	}
	if summarizeCalls == 0 {
		t.Fatal("compaction never ran")
	}
	// Disk stays bounded by (MaxSegments+1 files + summary) * threshold.
	bound := int64(maxSegs+2) * segBytes
	if l.DiskBytes() > bound {
		t.Errorf("disk %d bytes, want <= %d", l.DiskBytes(), bound)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := RecoverSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Summary) != 2 {
		t.Fatalf("summary has %d records, want 2 (stats + retained)", len(s.Summary))
	}
	var count int
	fmt.Sscanf(string(s.Summary[0].Payload), "count=%d", &count)
	// Conservation: summarized + live = everything appended. The retained
	// payload rides in the summary but is not folded into the count.
	if count+len(s.Records) != 200 {
		t.Fatalf("count=%d + live=%d != 200 appended", count, len(s.Records))
	}
	// The live tail is contiguous and ends at the newest append.
	first := int(s.Records[0].Seq)
	for i, r := range s.Records {
		if int(r.Seq) != first+i {
			t.Fatalf("live records not contiguous at %d", i)
		}
	}
	if got := string(s.Newest().Payload); got != string(payloadN(199)) {
		t.Fatalf("newest = %q", got)
	}
}

func TestSegmentCompactionCrashWindowDedups(t *testing.T) {
	// Simulate a crash between summary write and folded-segment removal: the
	// summary covers the oldest segment, but the file is still on disk.
	// Recovery must not double-count, and open must delete the stale file.
	path := filepath.Join(t.TempDir(), "seg.wal")
	opts := SegmentOptions{SegmentBytes: 256, MaxSegments: 2}
	l, err := CreateSegmented(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	segAppend(t, l, 0, 60)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := RecoverSegmented(path)
	if err != nil {
		t.Fatal(err)
	}

	// Resurrect a copy of a compacted segment with seqs at/below the summary
	// high-water mark — exactly what the crash window leaves behind.
	stale := sealedName(path, 0)
	var records []Record
	high := before.highWater()
	for i := high - 2; i <= high; i++ {
		if i < 0 {
			continue
		}
		records = append(records, Record{Seq: uint32(i), Payload: payloadN(int(i))})
	}
	if err := Rewrite(stale, records); err != nil {
		t.Fatal(err)
	}

	after, err := RecoverSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Records) != len(before.Records) {
		t.Fatalf("stale segment changed live count: %d != %d", len(after.Records), len(before.Records))
	}
	if after.Dropped == 0 {
		t.Fatal("expected dedup drops from the stale segment")
	}

	l2, err := OpenSegmented(after, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale shadowed segment still on disk: %v", err)
	}
}

func TestSegmentRecoverEmptyRotatedActive(t *testing.T) {
	// Crash right after a seal: the fresh active file holds only its header
	// (and, in the sibling window, does not exist at all). Both recover to
	// the sealed records and appends continue with the right sequence.
	for _, mode := range []string{"empty", "missing"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "seg.wal")
			opts := SegmentOptions{SegmentBytes: 256}
			l, err := CreateSegmented(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			segAppend(t, l, 0, 10)
			if err := l.seal(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if mode == "missing" {
				if err := os.Remove(path); err != nil {
					t.Fatal(err)
				}
			}
			s, err := RecoverSegmented(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Records) != 10 {
				t.Fatalf("recovered %d records, want 10", len(s.Records))
			}
			l2, err := OpenSegmented(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.Append(payloadN(10)); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := RecoverSegmented(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(s2.Records) != 11 || s2.Records[10].Seq != 10 {
				t.Fatalf("after resume-append: %d records, last seq %d", len(s2.Records), s2.Records[len(s2.Records)-1].Seq)
			}
		})
	}
}

func TestSegmentSealedDamageRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	l, err := CreateSegmented(path, SegmentOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	segAppend(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	name := segFiles(t, path)[0]
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverSegmented(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bit-flipped sealed segment recovered with err=%v, want ErrCheckpointCorrupt", err)
	}
}

func TestFaultFSInjectedAppendRollsBack(t *testing.T) {
	for _, spec := range []string{"sync:2", "write:2", "short:2"} {
		t.Run(spec, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "seg.wal")
			fsys, err := NewFaultFS(nil, spec)
			if err != nil {
				t.Fatal(err)
			}
			l, err := CreateSegmented(path, SegmentOptions{SegmentBytes: 1 << 20, FS: fsys})
			if err != nil {
				t.Fatal(err)
			}
			// Write #1 / sync #1 is the header; the fault lands on the first
			// record append.
			if err := l.Append(payloadN(0)); !errors.Is(err, ErrInjected) {
				t.Fatalf("append err = %v, want ErrInjected", err)
			}
			if fsys.Fired() != 1 {
				t.Fatalf("fired = %d, want 1", fsys.Fired())
			}
			// The failed append must be invisible: the next append succeeds
			// and recovery sees exactly that one record with seq 0.
			if err := l.Append(payloadN(1)); err != nil {
				t.Fatalf("append after rollback: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			s, err := RecoverSegmented(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Records) != 1 || s.Records[0].Seq != 0 || string(s.Records[0].Payload) != string(payloadN(1)) {
				t.Fatalf("recovered %+v, want one record seq 0 payload record-000001", s.Records)
			}
		})
	}
}

func TestFaultFSSpecParsing(t *testing.T) {
	if _, err := NewFaultFS(nil, "sync:0"); err == nil {
		t.Error("ordinal 0 accepted")
	}
	if _, err := NewFaultFS(nil, "flub:3"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewFaultFS(nil, "sync"); err == nil {
		t.Error("missing ordinal accepted")
	}
	f, err := NewFaultFS(nil, " sync:3 , write:7,short:12 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Spec(); got != "short:12,sync:3,write:7" {
		t.Errorf("Spec() = %q", got)
	}
}
