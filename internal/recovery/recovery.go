// Package recovery turns the checksum detector into a dependable system: a
// supervisor runs an epoch-structured computation, checkpoints its protected
// state at every epoch boundary, and on a detected checksum mismatch rolls
// the state back and re-executes just that epoch. Retries are bounded with
// exponential backoff; when they are exhausted the supervisor escalates to a
// full-run restart, and when restarts are exhausted too it degrades
// gracefully — the run continues and completes, but its result is marked
// tainted. This bounds the detection-to-recovery window that the paper's
// program-end verification leaves open (see DESIGN.md).
package recovery

import (
	"context"
	"errors"
	"fmt"
	"time"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// Policy bounds the supervisor's recovery effort. The zero value performs no
// retries and no restarts: the first unrecovered detection degrades the run.
type Policy struct {
	// MaxRetries is the number of rollback re-executions allowed per epoch
	// attempt before escalating.
	MaxRetries int
	// MaxRestarts is the number of full-run restarts allowed (across the
	// whole run) before degrading.
	MaxRestarts int
	// Backoff is the pause before the first retry of an epoch; successive
	// retries multiply it by BackoffFactor. Zero means retry immediately.
	Backoff time.Duration
	// BackoffFactor scales Backoff on each successive retry of the same
	// epoch. Values below 1 (including 0) mean 2.
	BackoffFactor float64
	// Sleep, when non-nil, replaces time.Sleep for backoff pauses (test
	// injection point).
	Sleep func(time.Duration)
}

// DefaultPolicy returns the production defaults: three retries per epoch,
// one full restart, 1ms initial backoff doubling per retry.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 3, MaxRestarts: 1, Backoff: time.Millisecond, BackoffFactor: 2}
}

// Config describes one supervised epoch-structured run.
type Config struct {
	// Epochs is the number of epochs the run is divided into (>= 1).
	Epochs int
	// Run executes epoch k against the current (possibly restored) state.
	Run func(k int) error
	// Verify checks integrity at the boundary closing epoch k; nil error
	// means the epoch is clean. A nil Verify trusts Run's own error.
	Verify func(k int) error
	// Checkpoint captures everything Run mutates; Restore reinstates a
	// snapshot it returned. Both are required.
	Checkpoint func() any
	Restore    func(snap any)
	// IsDetection classifies an error as a detected memory corruption
	// (retryable) rather than a terminal execution failure. Nil defaults to
	// matching *checksum.MismatchError anywhere in the error chain.
	IsDetection func(error) bool

	Policy  Policy
	Trace   telemetry.Sink
	Metrics *telemetry.Registry
}

// Outcome summarizes a supervised run.
type Outcome struct {
	// Epochs is the configured epoch count.
	Epochs int
	// Detected reports whether any epoch verification ever failed.
	Detected bool
	// FirstDetection is the epoch index of the first failed verification,
	// or -1 when the run was clean.
	FirstDetection int
	// Retries counts rollback re-executions across the whole run.
	Retries int
	// Restarts counts full-run restarts.
	Restarts int
	// Recovered reports that corruption was detected and the run still
	// completed with every epoch verified.
	Recovered bool
	// Tainted reports graceful degradation: the run completed and its
	// result was reported, but at least one epoch could not be verified.
	Tainted bool
}

// Supervise executes cfg.Epochs epochs under checkpoint/rollback recovery.
// It returns a non-nil error only for terminal failures: an invalid config,
// a context cancellation, or a Run error that IsDetection rejects. Detected
// corruptions are handled by the policy and reported in the Outcome.
func Supervise(ctx context.Context, cfg Config) (Outcome, error) {
	o := Outcome{Epochs: cfg.Epochs, FirstDetection: -1}
	if cfg.Epochs < 1 {
		return o, fmt.Errorf("recovery: need at least 1 epoch, got %d", cfg.Epochs)
	}
	if cfg.Run == nil || cfg.Checkpoint == nil || cfg.Restore == nil {
		return o, errors.New("recovery: Config needs Run, Checkpoint, and Restore")
	}
	isDetection := cfg.IsDetection
	if isDetection == nil {
		isDetection = func(err error) bool {
			var mm *checksum.MismatchError
			return errors.As(err, &mm)
		}
	}
	sleep := cfg.Policy.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	factor := cfg.Policy.BackoffFactor
	if factor < 1 {
		factor = 2
	}
	verifications := func(result string) *telemetry.Counter {
		return cfg.Metrics.Counter("defuse_epoch_verifications_total",
			telemetry.Label{Key: "result", Value: result})
	}
	backoffHist := cfg.Metrics.Histogram("defuse_recovery_backoff_seconds", telemetry.DefBuckets())

	initial := cfg.Checkpoint()
	for {
		restart := false
		for k := 0; k < cfg.Epochs && !restart; k++ {
			if err := ctx.Err(); err != nil {
				return o, err
			}
			snap := cfg.Checkpoint()
			retries := 0
			backoff := cfg.Policy.Backoff
			for {
				err := cfg.Run(k)
				if err == nil && cfg.Verify != nil {
					err = cfg.Verify(k)
				}
				telemetry.Emit(cfg.Trace, telemetry.EvEpochVerify, map[string]any{
					"epoch": k, "attempt": retries, "ok": err == nil,
				})
				if err == nil {
					verifications("ok").Inc()
					break
				}
				verifications("mismatch").Inc()
				if !isDetection(err) {
					return o, err
				}
				if !o.Detected {
					o.Detected = true
					o.FirstDetection = k
				}
				if o.Tainted {
					// Already degraded: report-and-continue, no more
					// recovery effort.
					break
				}
				if cerr := ctx.Err(); cerr != nil {
					return o, cerr
				}
				if retries < cfg.Policy.MaxRetries {
					retries++
					o.Retries++
					telemetry.Emit(cfg.Trace, telemetry.EvRecoveryRetry, map[string]any{
						"epoch": k, "attempt": retries, "backoff_seconds": backoff.Seconds(),
					})
					cfg.Metrics.Counter("defuse_recovery_retries_total").Inc()
					backoffHist.Observe(backoff.Seconds())
					if backoff > 0 {
						sleep(backoff)
					}
					backoff = time.Duration(float64(backoff) * factor)
					cfg.Restore(snap)
					continue
				}
				if o.Restarts < cfg.Policy.MaxRestarts {
					o.Restarts++
					telemetry.Emit(cfg.Trace, telemetry.EvRecoveryRestart, map[string]any{
						"epoch": k, "restart": o.Restarts,
					})
					cfg.Metrics.Counter("defuse_recovery_restarts_total").Inc()
					cfg.Restore(initial)
					restart = true
					break
				}
				o.Tainted = true
				telemetry.Emit(cfg.Trace, telemetry.EvRecoveryDegraded, map[string]any{
					"epoch": k,
				})
				cfg.Metrics.Counter("defuse_recovery_degraded_total").Inc()
				break
			}
		}
		if !restart {
			break
		}
	}
	o.Recovered = o.Detected && !o.Tainted
	return o, nil
}
