package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"defuse/internal/wal"
)

// Journal edge-case coverage: truncated final record, duplicate IDs across a
// segment boundary, a sealed-then-appended journal, recovery from an empty
// rotated segment, and the rotation/compaction conservation arithmetic.

// verifiedRecord builds a self-consistent verify record for id.
func verifiedRecord(id uint64) JournalRecord {
	ref := ReferenceDigest(8, 2, 3, id)
	return JournalRecord{
		ID: id, Kind: KindVerify, Words: 8, Epochs: 2, Seed: 3,
		Digest: ref, RefDigest: ref,
	}
}

// smallSegments makes every few records roll a segment: a record frame is
// 42+16 = 58 bytes, so 200 bytes fit three records per segment.
func smallSegments() journalConfig {
	return journalConfig{SegmentBytes: 200, MaxSegments: 3}
}

func mustOpenJournal(t *testing.T, path string, cfg journalConfig) (*journal, ResumeInfo) {
	t.Helper()
	j, info, err := openJournal(path, cfg)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	return j, info
}

func TestJournalTruncatedFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := mustOpenJournal(t, path, smallSegments())
	for id := uint64(1); id <= 5; id++ {
		if err := j.append(verifiedRecord(id)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}
	// Tear the active file mid-frame, as a kill during an append would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	stats, err := VerifyJournal(path)
	if err != nil {
		t.Fatalf("VerifyJournal over torn tail: %v", err)
	}
	if !stats.TornTail {
		t.Error("torn tail not reported")
	}
	if stats.Total != 4 {
		t.Errorf("total = %d, want 4 (final record discarded)", stats.Total)
	}

	// Resume appends after the valid prefix; the torn record's ID was never
	// acknowledged durable, so reusing it is legitimate.
	j2, info := mustOpenJournal(t, path, smallSegments())
	if !info.TornTail || !info.Reverified {
		t.Errorf("resume info = %+v, want torn tail + reverified", info)
	}
	if err := j2.append(verifiedRecord(5)); err != nil {
		t.Fatalf("append after torn resume: %v", err)
	}
	if err := j2.seal(); err != nil {
		t.Fatal(err)
	}
	stats, err = VerifyJournal(path)
	if err != nil || stats.Total != 5 {
		t.Fatalf("after resume: stats=%+v err=%v, want 5 records", stats, err)
	}
}

func TestJournalDuplicateAcrossSegmentBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	cfg := journalConfig{SegmentBytes: 200} // no compaction: keep both copies
	j, _ := mustOpenJournal(t, path, cfg)
	for id := uint64(1); id <= 4; id++ {
		if err := j.append(verifiedRecord(id)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	// The live journal refuses the duplicate up front.
	if err := j.append(verifiedRecord(2)); !errors.Is(err, errDuplicateID) {
		t.Fatalf("duplicate append err = %v, want errDuplicateID", err)
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}

	// Forge the duplicate into the ACTIVE segment while its original sits in
	// a sealed one — the cross-boundary case a single-file scan would miss if
	// it reset its seen-set per segment.
	scan, err := wal.RecoverSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Sealed) == 0 {
		t.Fatal("test needs at least one sealed segment")
	}
	act, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := wal.Open(act, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Forge with a fresh (non-duplicate) sequence number.
	forged := verifiedRecord(1).encode()
	if err := lg.Append(forged); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := VerifyJournal(path); err == nil {
		t.Fatal("VerifyJournal accepted a duplicate ID spanning a segment boundary")
	}
	if _, _, err := openJournal(path, cfg); !errors.Is(err, errDuplicateID) {
		t.Fatalf("openJournal err = %v, want errDuplicateID", err)
	}
}

func TestJournalSealedThenAppended(t *testing.T) {
	// A journal sealed by a clean drain must accept a fresh life appending
	// after it — across however many segments the first life left.
	path := filepath.Join(t.TempDir(), "j.wal")
	cfg := smallSegments()
	j, _ := mustOpenJournal(t, path, cfg)
	for id := uint64(1); id <= 7; id++ {
		if err := j.append(verifiedRecord(id)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}
	j2, info := mustOpenJournal(t, path, cfg)
	if info.LastID != 7 || !info.Reverified {
		t.Fatalf("resume info = %+v, want last ID 7 reverified", info)
	}
	for id := uint64(8); id <= 10; id++ {
		if err := j2.append(verifiedRecord(id)); err != nil {
			t.Fatalf("append %d after reopen: %v", id, err)
		}
	}
	// IDs from the first life stay reserved after reopen.
	if err := j2.append(verifiedRecord(3)); !errors.Is(err, errDuplicateID) {
		t.Fatalf("first-life duplicate err = %v, want errDuplicateID", err)
	}
	if err := j2.seal(); err != nil {
		t.Fatal(err)
	}
	stats, err := VerifyJournal(path)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != 10 {
		t.Fatalf("total = %d, want 10", stats.Total)
	}
	wantXor := uint64(0)
	for id := uint64(1); id <= 10; id++ {
		wantXor ^= id
	}
	if stats.XorIDs != wantXor {
		t.Fatalf("xor ledger = %x, want %x", stats.XorIDs, wantXor)
	}
}

func TestJournalEmptyRotatedSegmentRecovery(t *testing.T) {
	// Crash right after a rotation, before any append lands in the fresh
	// active file — and the harsher sibling where the fresh active never got
	// created. Both must resume cleanly.
	path := filepath.Join(t.TempDir(), "j.wal")
	cfg := smallSegments()
	j, _ := mustOpenJournal(t, path, cfg)
	for id := uint64(1); id <= 3; id++ {
		if err := j.append(verifiedRecord(id)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}
	// Manufacture the crash window: rotate the whole file into a sealed
	// segment and leave an empty (header-only) active file.
	if err := os.Rename(path, path+".s000000"); err != nil {
		t.Fatal(err)
	}
	empty, err := wal.Create(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}

	j2, info := mustOpenJournal(t, path, cfg)
	if info.Records != 3 || info.LastID != 3 || !info.Reverified {
		t.Fatalf("resume info = %+v, want 3 records ending at ID 3", info)
	}
	if err := j2.append(verifiedRecord(4)); err != nil {
		t.Fatalf("append after empty-segment resume: %v", err)
	}
	if err := j2.seal(); err != nil {
		t.Fatal(err)
	}
	stats, err := VerifyJournal(path)
	if err != nil || stats.Total != 4 {
		t.Fatalf("stats=%+v err=%v, want 4 records", stats, err)
	}
}

func TestJournalCompactionConservesLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	cfg := smallSegments()
	j, _ := mustOpenJournal(t, path, cfg)
	const n = 60
	wantXor := uint64(0)
	injected := 0
	for id := uint64(1); id <= n; id++ {
		rec := verifiedRecord(id)
		if id%5 == 0 {
			rec.Injected, rec.Detected, rec.Recovered = true, true, true
			injected++
		}
		if err := j.append(rec); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
		wantXor ^= id
	}
	if j.compacted() == 0 {
		t.Fatal("compaction never ran at these sizes")
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}

	stats, err := VerifyJournal(path)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != n {
		t.Fatalf("total = %d (live %d + compacted %d), want %d", stats.Total, stats.Live, stats.Compacted, n)
	}
	if stats.Compacted == 0 || stats.Live == 0 {
		t.Fatalf("stats = %+v, want both live and compacted records", stats)
	}
	if stats.XorIDs != wantXor {
		t.Fatalf("xor ledger = %x, want %x", stats.XorIDs, wantXor)
	}
	if stats.Injected != injected || stats.Detected != injected || stats.Recovered != injected {
		t.Fatalf("flag tallies %+v, want %d each across live+compacted", stats, injected)
	}
	// Disk usage stays bounded by the rotation threshold arithmetic:
	// (MaxSegments sealed + active + summary slack) segments.
	bound := int64(cfg.MaxSegments+2) * cfg.SegmentBytes
	if stats.DiskBytes > bound {
		t.Fatalf("disk = %d bytes, want <= %d", stats.DiskBytes, bound)
	}

	// A resumed journal continues the ledger exactly.
	j2, info := mustOpenJournal(t, path, cfg)
	if info.Records+info.Compacted != n {
		t.Fatalf("resume accounts for %d+%d records, want %d", info.Records, info.Compacted, n)
	}
	if err := j2.append(verifiedRecord(n + 1)); err != nil {
		t.Fatalf("append after compacted resume: %v", err)
	}
	if err := j2.seal(); err != nil {
		t.Fatal(err)
	}
	stats, err = VerifyJournal(path)
	if err != nil || stats.Total != n+1 {
		t.Fatalf("after resume: stats=%+v err=%v, want %d", stats, err, n+1)
	}
}

func TestJournalBitFlipInSealedSegmentRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	cfg := journalConfig{SegmentBytes: 200}
	j, _ := mustOpenJournal(t, path, cfg)
	for id := uint64(1); id <= 7; id++ {
		if err := j.append(verifiedRecord(id)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}
	sealed := path + ".s000000"
	raw, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(sealed, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyJournal(path); !errors.Is(err, wal.ErrCheckpointCorrupt) {
		t.Fatalf("VerifyJournal err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, _, err := openJournal(path, cfg); !errors.Is(err, wal.ErrCheckpointCorrupt) {
		t.Fatalf("openJournal err = %v, want refusal over flipped sealed segment", err)
	}
}

func TestJournalInjectedAppendFaultRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	// Sync ordinal 1 is the create-header sync; fail the second append's.
	fsys, err := wal.NewFaultFS(nil, "sync:3")
	if err != nil {
		t.Fatal(err)
	}
	j, _ := mustOpenJournal(t, path, journalConfig{SegmentBytes: 1 << 20, FS: fsys})
	if err := j.append(verifiedRecord(1)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := j.append(verifiedRecord(2)); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("append 2 err = %v, want ErrInjected", err)
	}
	// The failed ID stays reserved: the bytes were rolled back, but the
	// reservation is conservative.
	if err := j.append(verifiedRecord(2)); !errors.Is(err, errDuplicateID) {
		t.Fatalf("retry of faulted ID err = %v, want errDuplicateID", err)
	}
	if err := j.append(verifiedRecord(3)); err != nil {
		t.Fatalf("append 3 after fault: %v", err)
	}
	if err := j.seal(); err != nil {
		t.Fatal(err)
	}
	stats, err := VerifyJournal(path)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if stats.Total != 2 || stats.XorIDs != 1^3 {
		t.Fatalf("stats = %+v, want exactly IDs 1 and 3", stats)
	}
}
