package goinstr

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const sampleSrc = `package main

import "fmt"

func compute(a float64, b float64) float64 {
	temp := 0.0
	temp = a + b
	sum1 := temp + 30.0
	sum2 := temp + 40.0
	var acc float64
	for i := 0; i < 4; i++ {
		acc += sum1 * sum2
	}
	return acc
}

func main() {
	fmt.Println(compute(10, 20))
}
`

func instrumentSample(t *testing.T, opt Options) (string, *Report) {
	t.Helper()
	out, rep, err := Instrument("main.go", sampleSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

func TestInstrumentStructure(t *testing.T) {
	out, rep := instrumentSample(t, Options{Funcs: []string{"compute"}})
	for _, want := range []string{
		"__defuseT := rt.NewTracker()",
		"var __defuseC",
		"rt.DefDyn(__defuseT",
		"rt.Use(__defuseT",
		"rt.Final(__defuseT",
		"__defuseT.MustVerify()",
		`rt "defuse/rt"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("instrumented source missing %q:\n%s", want, out)
		}
	}
	tracked := rep.Tracked["compute"]
	if len(tracked) < 5 { // a, b, temp, sum1, sum2, acc
		t.Errorf("tracked = %v, want at least 5 variables", tracked)
	}
	// The loop index is a control variable.
	for _, v := range tracked {
		if v == "i" {
			t.Error("loop index i must not be tracked")
		}
	}
}

func TestInstrumentedOutputParses(t *testing.T) {
	out, _ := instrumentSample(t, Options{})
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("instrumented output does not parse: %v\n%s", err, out)
	}
}

func TestFuncFilter(t *testing.T) {
	out, rep := instrumentSample(t, Options{Funcs: []string{"main"}})
	if len(rep.Tracked["compute"]) != 0 {
		t.Error("compute should not be instrumented")
	}
	if strings.Contains(out, "rt.DefDyn") {
		// main has no trackable vars (no float/int locals with literal init
		// besides none), so nothing should be instrumented.
		t.Errorf("unexpected instrumentation:\n%s", out)
	}
}

func TestAddressTakenExcluded(t *testing.T) {
	src := `package p

func f() float64 {
	x := 1.0
	y := 2.0
	p := &x
	_ = p
	return x + y
}
`
	out, rep, err := Instrument("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sk := rep.Skipped["f"]
	if sk["x"] == "" {
		t.Errorf("x should be skipped (address taken); skipped=%v", sk)
	}
	for _, v := range rep.Tracked["f"] {
		if v == "x" {
			t.Error("x tracked despite address-taken")
		}
	}
	if !strings.Contains(out, "rt.Use(__defuseT, &__defuseC0, y)") &&
		!strings.Contains(out, "rt.Use(__defuseT") {
		t.Errorf("y should still be tracked:\n%s", out)
	}
}

func TestControlVariablesExcluded(t *testing.T) {
	src := `package p

func f(n int) int {
	total := 0
	step := 2
	for k := 0; k < n; k++ {
		if total > 100 {
			break
		}
		total += step
	}
	return total
}
`
	_, rep, err := Instrument("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sk := rep.Skipped["f"]
	if sk["n"] == "" || sk["total"] == "" {
		t.Errorf("n and total are control variables; skipped=%v", sk)
	}
	// k is declared in the for clause, so it is never even a candidate.
	for _, v := range rep.Tracked["f"] {
		if v == "k" || v == "n" || v == "total" {
			t.Errorf("control variable %s tracked", v)
		}
	}
	found := false
	for _, v := range rep.Tracked["f"] {
		if v == "step" {
			found = true
		}
	}
	if !found {
		t.Errorf("step should be tracked; tracked=%v", rep.Tracked["f"])
	}
}

func TestClosureCaptureExcluded(t *testing.T) {
	src := `package p

func f() float64 {
	x := 1.0
	g := func() { x = 2.0 }
	g()
	return x
}
`
	_, rep, err := Instrument("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped["f"]["x"] == "" {
		t.Errorf("closure-captured x must be skipped; report=%+v", rep)
	}
}

func TestVarDeclsHoisted(t *testing.T) {
	src := `package p

func f() float64 {
	var a float64 = 3.5
	var b float64
	b = a * 2.0
	return b
}
`
	out, rep, err := Instrument("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tracked["f"]) != 2 {
		t.Fatalf("tracked = %v", rep.Tracked["f"])
	}
	// The initializer must have become an instrumented assignment.
	if !strings.Contains(out, "a = rt.DefDyn(") {
		t.Errorf("initializer not instrumented:\n%s", out)
	}
	// No duplicate declaration may remain.
	if strings.Count(out, "var a float64") != 1 {
		t.Errorf("expected exactly one declaration of a:\n%s", out)
	}
}

func TestCompoundAssignExpanded(t *testing.T) {
	out, _ := instrumentSample(t, Options{Funcs: []string{"compute"}})
	// acc += ... expands to acc = DefDyn(..., acc, Use(...acc) + (...)).
	if !strings.Contains(out, "acc = rt.DefDyn(__defuseT") {
		t.Errorf("compound assignment not expanded:\n%s", out)
	}
}

// TestInstrumentedProgramRuns compiles and executes instrumented code with
// the real Go toolchain in a scratch module; a fault-free run must complete
// without the verifier panicking.
func TestInstrumentedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out, _, err := Instrument("main.go", sampleSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	repo, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	gomod := "module scratch\n\ngo 1.22\n\nrequire defuse v0.0.0\n\nreplace defuse => " + repo + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("instrumented program failed: %v\n%s\nsource:\n%s", err, outBytes, out)
	}
	if !strings.Contains(string(outBytes), "2100") { // (10+20+30)*(10+20+40)*4 = 16800? computed below
		// compute: temp=30, sum1=60, sum2=70, acc=4*4200=16800
		if !strings.Contains(string(outBytes), "16800") {
			t.Errorf("unexpected program output: %s", outBytes)
		}
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, _, err := Instrument("bad.go", "not go code", Options{}); err == nil {
		t.Error("expected parse error")
	}
}

func TestNoDoubleImport(t *testing.T) {
	src := `package p

import rt "defuse/rt"

var _ = rt.NewTracker

func f(a float64) float64 {
	x := 1.0
	x = x + a
	return x
}
`
	out, _, err := Instrument("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, `"defuse/rt"`) != 1 {
		t.Errorf("duplicate rt import:\n%s", out)
	}
}
