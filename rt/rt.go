// Package rt is the runtime library for checksum-instrumented Go code
// produced by the goinstr source instrumenter. It implements the paper's
// general (dynamic use count) scheme of Algorithm 3 and Section 4.1: each
// tracked variable carries a shadow use counter; definitions and uses fold
// the variable's bit pattern into global def/use checksums, and auxiliary
// e_def/e_use checksums close the persistent-corruption loophole.
//
// The checksums live in Tracker fields — ordinary Go variables that the
// instrumented code keeps "register-resident" in the paper's sense of being
// outside the protected data set.
package rt

import (
	"math"

	"defuse/internal/checksum"
)

// Word is the set of value types the instrumenter can track: their bit
// patterns are folded into the checksums. The constraint is deliberately
// exact (no ~): Bits must see the concrete type to pick the right bit
// extraction.
type Word interface {
	float64 | int | int64 | uint64 | int32 | uint32
}

// Bits returns the canonical 64-bit pattern of a tracked value.
func Bits[T Word](v T) uint64 {
	switch x := any(v).(type) {
	case float64:
		return math.Float64bits(x)
	case int:
		return uint64(x)
	case int64:
		return uint64(x)
	case uint64:
		return x
	case int32:
		return uint64(uint32(x))
	case uint32:
		return uint64(x)
	}
	panic("rt: unreachable: Word constraint admits only the types above")
}

// Counter is a shadow dynamic use counter for one tracked variable.
type Counter struct {
	n       int64
	defined bool
}

// Tracker holds the global checksum state for one instrumented function
// activation.
type Tracker struct {
	pair *checksum.Pair
	// obs, when non-nil, observes every def/use/verify. The hot path is a
	// single nil check, so the uninstrumented case stays allocation-free
	// and within noise of the unobserved tracker (see the benchmark guard
	// in observer_test.go).
	obs Observer
	// defs/uses count dynamic def and use operations; epoch is the current
	// epoch index (see epoch.go). Plain increments, kept on the hot path
	// because epoch snapshots need them and they stay within the benchmark
	// guard's noise budget.
	defs, uses uint64
	epoch      int
}

// NewTracker returns a tracker using the paper's modulo-addition operator.
func NewTracker() *Tracker { return NewTrackerWith(checksum.ModAdd) }

// NewTrackerWith returns a tracker using the given commutative operator.
func NewTrackerWith(k checksum.Kind) *Tracker {
	return &Tracker{pair: checksum.NewPair(k)}
}

// Def records a definition with a compile-time-known use count n: the stored
// value is folded into the def-checksum n times (Algorithm 3, known path).
// It returns v so the call can wrap an assignment's right-hand side.
func Def[T Word](t *Tracker, v T, n int64) T {
	bits := Bits(v)
	t.pair.AddDef(bits, n)
	t.defs++
	if t.obs != nil {
		t.obs.ObserveDef(bits, n)
	}
	return v
}

// DefDyn records a definition whose use count is unknown at compile time
// (Algorithm 3 lines 13-16): first the variable's previous value prev is
// adjusted against its counter, then the new value v is folded into def and
// e_def and the counter reset. The first definition of a variable has no
// previous value to adjust; the counter tracks that.
func DefDyn[T Word](t *Tracker, c *Counter, prev, v T) T {
	if c.defined {
		t.pair.Adjust(Bits(prev), c.n)
	}
	t.pair.AddEDef(Bits(v))
	t.defs++
	c.n = 0
	c.defined = true
	if t.obs != nil {
		t.obs.ObserveDef(Bits(v), -1)
	}
	return v
}

// Use records a use of a dynamically counted variable: the observed value is
// folded into the use-checksum and the counter incremented. It returns v so
// reads can be wrapped in place.
func Use[T Word](t *Tracker, c *Counter, v T) T {
	bits := Bits(v)
	t.pair.AddUse(bits)
	t.uses++
	c.n++
	if t.obs != nil {
		t.obs.ObserveUse(bits)
	}
	return v
}

// UseKnown records a use of a statically counted value (no counter needed).
func UseKnown[T Word](t *Tracker, v T) T {
	bits := Bits(v)
	t.pair.AddUse(bits)
	t.uses++
	if t.obs != nil {
		t.obs.ObserveUse(bits)
	}
	return v
}

// Final performs the epilogue adjustment for a dynamically counted variable
// (Algorithm 3 lines 21-22): its current value joins the def-checksum
// count-1 times and the auxiliary use-checksum once.
func Final[T Word](t *Tracker, c *Counter, v T) {
	if !c.defined {
		return
	}
	t.pair.Adjust(Bits(v), c.n)
	c.n = 0
	c.defined = false
}

// Verify compares the def/use and e_def/e_use checksums; a non-nil error is
// a detected memory corruption (*checksum.MismatchError).
func (t *Tracker) Verify() error {
	err := t.pair.Verify()
	if t.obs != nil {
		t.obs.ObserveVerify(err)
	}
	return err
}

// MustVerify panics with the mismatch if a memory error was detected. The
// goinstr instrumenter inserts it in a deferred epilogue so that silent data
// corruption becomes a loud failure.
func (t *Tracker) MustVerify() {
	if err := t.Verify(); err != nil {
		panic(err)
	}
}

// Reset clears all checksums, dynamic operation counters, and the epoch
// index for reuse.
func (t *Tracker) Reset() {
	t.pair.Reset()
	t.defs, t.uses, t.epoch = 0, 0, 0
}

// Checksums exposes the four accumulators (def, use, e_def, e_use) for
// inspection and testing.
func (t *Tracker) Checksums() (def, use, edef, euse uint64) {
	return t.pair.Def, t.pair.Use, t.pair.EDef, t.pair.EUse
}

// CorruptBits is a test helper that flips the given bit of a float64's
// representation, simulating a memory error on a tracked variable.
func CorruptBits(v float64, bit uint) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ 1<<bit)
}
