// Sparse: the irregular/iterative pipeline of Section 4 on a CG-style
// solver. Data-dependent accesses (p[cols[i][j]]) cannot be counted at
// compile time; the instrumenter hoists an inspector above the while loop
// (the index structure is loop-invariant), keeps dynamic shadow counters for
// the vectors that change access patterns, and balances loop-trip-dependent
// counts in an epilogue scaled by the runtime iteration count — the paper's
// Figure 9 generalized.
//
//	go run ./examples/sparse
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"defuse"
	"defuse/internal/interp"
)

func main() {
	bm, err := defuse.Benchmark("CG")
	if err != nil {
		log.Fatal(err)
	}

	// Show the plans the instrumenter chose (Section 4.2).
	res, err := defuse.Compile(bm.Source, defuse.Options{Split: true, Inspector: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== protection plans (CG) ==")
	fmt.Print(res.Report.String())
	fmt.Println()

	params := map[string]int64{"n": 64, "k": 8, "maxiter": 10}
	setup := func(m *defuse.Machine) {
		rng := rand.New(rand.NewSource(11))
		m.FillFloat("Aval", func(i int64) float64 { return 0.5 + rng.Float64() })
		m.FillInt("cols", func(i int64) int64 { return rng.Int63n(params["n"]) })
		rnorm := 0.0
		for i := int64(0); i < params["n"]; i++ {
			v := 1 + rng.Float64()
			m.SetFloat("p", v, i)
			m.SetFloat("r", v, i)
			rnorm += v * v
		}
		m.SetFloat("rnorm", rnorm)
	}

	clean, err := defuse.NewMachine(res.Prog, params)
	if err != nil {
		log.Fatal(err)
	}
	setup(clean)
	if err := clean.Run(); err != nil {
		log.Fatalf("false positive: %v", err)
	}
	fmt.Printf("fault-free run verified; %d checksum ops over %d statements\n",
		clean.Counts.CsOps, clean.Counts.Stmts)

	// Compare against the unoptimized (counter-only) version: the paper's
	// CG gains come entirely from inspector hoisting.
	unopt, err := defuse.Compile(bm.Source, defuse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mu, err := defuse.NewMachine(unopt.Prog, params)
	if err != nil {
		log.Fatal(err)
	}
	setup(mu)
	if err := mu.Run(); err != nil {
		log.Fatalf("false positive: %v", err)
	}
	fmt.Printf("operation totals: counters-only %d vs inspector-hoisted %d (%.1f%% saved)\n",
		mu.Counts.Total(), clean.Counts.Total(),
		100*(1-float64(clean.Counts.Total())/float64(mu.Counts.Total())))

	// Inject a fault into p between iterations and detect it.
	m, err := defuse.NewMachine(res.Prog, params)
	if err != nil {
		log.Fatal(err)
	}
	setup(m)
	base, size, _ := m.Region("p")
	fired := false
	m.SetStepHook(func(step uint64) {
		if !fired && step == clean.Counts.Stmts/3 {
			m.Mem().FlipBit(base+size/2, 40)
			fired = true
		}
	})
	err = m.Run()
	var de *interp.DetectionError
	if errors.As(err, &de) {
		fmt.Printf("injected corruption of p detected: %v\n", de)
	} else {
		fmt.Printf("run result: %v\n", err)
	}
}
