// Package lang implements a small imperative loop language used as the
// instrumentation target of the paper's compiler algorithms. It covers the
// constructs the paper's benchmarks need: parameterized affine for-loops,
// data-dependent while-loops and conditionals, float and int arrays and
// scalars, and indirect (data-dependent) array subscripts. The checksum
// instrumentation primitives (add_to_chksm, assert_checksums) are statements
// of the language itself, so instrumented programs remain ordinary programs
// that the interpreter can execute.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt    // integer literal
	TokFloat  // floating-point literal
	TokString // (reserved)

	// punctuation and operators
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon
	TokColon
	TokAssign  // =
	TokPlusEq  // +=
	TokMinusEq // -=
	TokStarEq  // *=
	TokSlashEq // /=
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokEq      // ==
	TokNe      // !=
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokAndAnd  // &&
	TokOrOr    // ||
	TokBang    // !

	// keywords
	TokProgram
	TokFor
	TokTo
	TokWhile
	TokIf
	TokElse
	TokFloatKw
	TokIntKw
	TokAddToChksm
	TokAssertChecksums
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "int literal",
	TokFloat: "float literal", TokString: "string literal",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemicolon: ";",
	TokColon: ":", TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=",
	TokStarEq: "*=", TokSlashEq: "/=", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokBang: "!",
	TokProgram: "program", TokFor: "for", TokTo: "to", TokWhile: "while",
	TokIf: "if", TokElse: "else", TokFloatKw: "float", TokIntKw: "int",
	TokAddToChksm: "add_to_chksm", TokAssertChecksums: "assert_checksums",
}

// String returns a readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"program":          TokProgram,
	"for":              TokFor,
	"to":               TokTo,
	"while":            TokWhile,
	"if":               TokIf,
	"else":             TokElse,
	"float":            TokFloatKw,
	"int":              TokIntKw,
	"add_to_chksm":     TokAddToChksm,
	"assert_checksums": TokAssertChecksums,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg)
}
