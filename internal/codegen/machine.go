package codegen

import (
	"context"
	"errors"
	"fmt"
	"math"

	"defuse/internal/checksum"
	"defuse/internal/lang"
	"defuse/internal/memsim"
	"defuse/telemetry"
)

// tickCheckInterval is how many loop-iteration ticks pass between context
// polls, mirroring interp's per-statement interval. Native code ticks once
// per loop iteration instead of once per statement, so cancellation latency
// is a few hundred iterations either way.
const tickCheckInterval = 256

// VarSpec declares one program variable for machine construction: generated
// code computes the concrete dimension sizes from the parameters and passes
// them here, reproducing the interpreter's layout without carrying the AST.
type VarSpec struct {
	Name string
	// Int marks an int-typed variable (default float, as in lang).
	Int bool
	// Dims are the concrete dimension sizes; empty for scalars.
	Dims []int64
}

// varInfo locates a variable in simulated memory.
type varInfo struct {
	region memsim.Region
	dims   []int64
	isInt  bool
}

// Machine is the native backend's execution state: the same simulated
// memory, checksum pair, and telemetry wiring as interp.Machine, without the
// tree-walking interpreter on top. Compiled closures and generated code run
// against it through the Fn ABI.
type Machine struct {
	mem    *memsim.Memory
	pair   *checksum.Pair
	params map[string]int64
	vars   map[string]*varInfo
	order  []string

	// MaxTicks bounds the number of loop-iteration ticks (guards against
	// non-converging while loops). Zero means the default of 500M.
	MaxTicks uint64

	ticks    uint64
	stepHook func(step uint64)

	ctx      context.Context
	ctxCheck uint64

	// Cached outermost-loop bounds, evaluated when epoch 0 executes (they
	// may depend on scalars the prologue computes) — the native analogue of
	// interp.EpochPlan's lo/hi/haveBounds.
	lo, hi     int64
	haveBounds bool

	trace   telemetry.Sink
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer

	basePad int
}

// Option configures a Machine.
type Option func(*Machine)

// WithChecksumKind selects the checksum operator (default ModAdd).
func WithChecksumKind(k checksum.Kind) Option {
	return func(m *Machine) { m.pair = checksum.NewPair(k) }
}

// WithMaxTicks bounds loop-iteration execution.
func WithMaxTicks(n uint64) Option {
	return func(m *Machine) { m.MaxTicks = n }
}

// WithTrace streams execution events (fault.injected, verify.ok/mismatch,
// detection) to s, mirroring interp.WithTrace.
func WithTrace(s telemetry.Sink) Option {
	return func(m *Machine) { m.trace = s }
}

// WithMetrics publishes verification outcomes into r.
func WithMetrics(r *telemetry.Registry) Option {
	return func(m *Machine) { m.metrics = r }
}

// WithTracer records causally linked spans for supervised execution.
func WithTracer(t *telemetry.Tracer) Option {
	return func(m *Machine) { m.tracer = t }
}

// WithBaseOffset shifts every declared variable's base address by pad unused
// words, mirroring interp.WithBaseOffset so decorrelated layouts carry
// across backends.
func WithBaseOffset(pad int) Option {
	return func(m *Machine) { m.basePad = pad }
}

// NewMachine builds a machine from concrete variable specs, allocating the
// variables in declaration order exactly as interp.New does, so a word
// address in one backend names the same logical array element in the other.
func NewMachine(params map[string]int64, specs []VarSpec, opts ...Option) (*Machine, error) {
	m := &Machine{
		params: map[string]int64{},
		vars:   map[string]*varInfo{},
		pair:   checksum.NewPair(checksum.ModAdd),
		mem:    memsim.New(0),
	}
	for k, v := range params {
		m.params[k] = v
	}
	for _, opt := range opts {
		opt(m)
	}
	alloc := memsim.NewAllocator(m.mem)
	if m.basePad > 0 {
		alloc.Alloc(m.basePad)
	}
	for _, sp := range specs {
		if m.vars[sp.Name] != nil {
			return nil, fmt.Errorf("codegen: duplicate variable %q", sp.Name)
		}
		size := int64(1)
		for _, d := range sp.Dims {
			if d < 0 {
				return nil, fmt.Errorf("codegen: array %q has negative dimension %d", sp.Name, d)
			}
			size *= d
		}
		vi := &varInfo{dims: sp.Dims, isInt: sp.Int}
		vi.region = alloc.Alloc(int(size))
		m.vars[sp.Name] = vi
		m.order = append(m.order, sp.Name)
	}
	if m.trace != nil {
		m.mem.SetFaultHook(func(addr, bit int) {
			fields := map[string]any{"addr": addr, "bit": bit}
			if name, idx, ok := m.varAt(addr); ok {
				fields["array"] = name
				fields["index"] = idx
			}
			telemetry.Emit(m.trace, telemetry.EvFaultInjected, fields)
		})
	}
	return m, nil
}

// MachineFor builds a machine for a checked program, evaluating the
// declaration dimensions from the parameters — the closure-backend analogue
// of interp.New's allocation pass.
func MachineFor(prog *lang.Program, params map[string]int64, opts ...Option) (*Machine, error) {
	if err := lang.Check(prog); err != nil {
		return nil, err
	}
	bound := map[string]int64{}
	for _, p := range prog.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("codegen: parameter %q not supplied", p)
		}
		bound[p] = v
	}
	specs := make([]VarSpec, 0, len(prog.Decls))
	for _, d := range prog.Decls {
		sp := VarSpec{Name: d.Name, Int: d.Type == lang.TypeInt}
		for _, dim := range d.Dims {
			dv, err := evalConstInt(dim, bound)
			if err != nil {
				return nil, fmt.Errorf("codegen: sizing %q: %w", d.Name, err)
			}
			sp.Dims = append(sp.Dims, dv)
		}
		specs = append(specs, sp)
	}
	return NewMachine(bound, specs, opts...)
}

// varAt reverse-maps a word address to the owning variable and flat index.
func (m *Machine) varAt(addr int) (name string, index int, ok bool) {
	for n, vi := range m.vars {
		if addr >= vi.region.Base && addr < vi.region.Base+vi.region.Size {
			return n, addr - vi.region.Base, true
		}
	}
	return "", 0, false
}

// Mem exposes the simulated memory (for fault injection).
func (m *Machine) Mem() *memsim.Memory { return m.mem }

// Pair exposes the checksum accumulators.
func (m *Machine) Pair() *checksum.Pair { return m.pair }

// SetStepHook installs a callback invoked on every loop-iteration tick with
// the running tick count; fault-injection experiments use it to corrupt
// memory at a chosen point.
func (m *Machine) SetStepHook(h func(step uint64)) { m.stepHook = h }

// SetContext arms (or, with nil, disarms) deadline/cancellation propagation:
// execution polls ctx every tickCheckInterval loop iterations and aborts
// with a *CancelError once it is done.
func (m *Machine) SetContext(ctx context.Context) {
	m.ctx = ctx
	m.ctxCheck = 0
}

// Reset returns a pooled machine to its post-construction state: memory
// zeroed, checksum accumulators re-derived, tick count, hooks, context, and
// cached loop bounds cleared. The parameter bindings and variable layout are
// preserved.
func (m *Machine) Reset() {
	m.mem.Zero()
	m.mem.SetLoadHook(nil)
	m.mem.SetRedirect(nil)
	m.pair.Reset()
	m.ticks = 0
	m.stepHook = nil
	m.ctx = nil
	m.ctxCheck = 0
	m.lo, m.hi, m.haveBounds = 0, 0, false
}

// Param returns a parameter's value. Generated code binds parameters once at
// function entry; a missing name is a code-generation bug, not a runtime
// condition, hence the panic.
func (m *Machine) Param(name string) int64 {
	v, ok := m.params[name]
	if !ok {
		panic(fmt.Sprintf("codegen: parameter %q not bound", name))
	}
	return v
}

// Var returns a variable's base address and concrete dimension sizes.
func (m *Machine) Var(name string) (base int, dims []int64) {
	vi := m.vars[name]
	if vi == nil {
		panic(fmt.Sprintf("codegen: variable %q not allocated", name))
	}
	return vi.region.Base, vi.dims
}

// SetBounds caches the outermost loop's bounds, evaluated by epoch 0.
func (m *Machine) SetBounds(lo, hi int64) {
	m.lo, m.hi, m.haveBounds = lo, hi, true
}

// Bounds returns the cached outermost-loop bounds; ok is false before epoch
// 0 has evaluated them.
func (m *Machine) Bounds() (lo, hi int64, ok bool) { return m.lo, m.hi, m.haveBounds }

// ErrNoBounds reports an epoch run before epoch 0 cached the loop bounds,
// with interp's message text.
func ErrNoBounds(epoch int) error {
	return fmt.Errorf("codegen: epoch %d run before epoch 0 evaluated loop bounds", epoch)
}

// Tick advances the loop-iteration budget: it enforces MaxTicks, polls the
// armed context, and feeds the step hook. Compiled code calls it once per
// loop iteration.
func (m *Machine) Tick(line, col int) error {
	m.ticks++
	max := m.tickBudget()
	if m.ticks > max {
		return &RuntimeError{Pos: lang.Pos{Line: line, Col: col}, Msg: fmt.Sprintf("step limit %d exceeded", max)}
	}
	if m.ctx != nil && m.ticks >= m.ctxCheck {
		m.ctxCheck = m.ticks + tickCheckInterval
		if err := m.ctx.Err(); err != nil {
			return &CancelError{Pos: lang.Pos{Line: line, Col: col}, Err: err}
		}
	}
	if m.stepHook != nil {
		m.stepHook(m.ticks)
	}
	return nil
}

func (m *Machine) tickBudget() uint64 {
	if m.MaxTicks == 0 {
		return 500_000_000
	}
	return m.MaxTicks
}

// Load reads a raw word through the simulated memory (hooks and access
// accounting included, exactly as interpreted loads).
func (m *Machine) Load(addr int) uint64 { return m.mem.Load(addr) }

// LoadF reads a float64 value.
func (m *Machine) LoadF(addr int) float64 { return math.Float64frombits(m.mem.Load(addr)) }

// Store writes a raw word through the simulated memory.
func (m *Machine) Store(addr int, v uint64) { m.mem.Store(addr, v) }

// StoreF writes a float64 value.
func (m *Machine) StoreF(addr int, v float64) { m.mem.Store(addr, math.Float64bits(v)) }

// Fold folds a raw value into the selected accumulator n times through
// checksum.Pair.ScaleFold, keeping the shadow copies in step.
func (m *Machine) Fold(a checksum.Acc, v uint64, n int64) { m.pair.ScaleFold(a, v, n) }

// Assert is assert_checksums(): verify the pair, stream the verification
// outcome, and surface a detection as a *DetectionError at the statement's
// source position.
func (m *Machine) Assert(line, col int) error {
	if err := m.pair.Verify(); err != nil {
		m.emitVerify(err)
		return &DetectionError{Pos: lang.Pos{Line: line, Col: col}, Err: err}
	}
	m.emitVerify(nil)
	return nil
}

// OOB reports a subscript out of bounds with interp's message text.
func (m *Machine) OOB(ix, dim int64, k int, name string, line, col int) error {
	return &RuntimeError{Pos: lang.Pos{Line: line, Col: col}, Msg: fmt.Sprintf(
		"index %d out of bounds [0,%d) in dimension %d of %q", ix, dim, k, name)}
}

// DivZero reports a division by zero with interp's message text.
func (m *Machine) DivZero(line, col int) error {
	return &RuntimeError{Pos: lang.Pos{Line: line, Col: col}, Msg: "division by zero"}
}

// ModZero reports a modulo by zero with interp's message text.
func (m *Machine) ModZero(line, col int) error {
	return &RuntimeError{Pos: lang.Pos{Line: line, Col: col}, Msg: "modulo by zero"}
}

// ModFloat reports % applied to non-integer operands, interp's message text.
func (m *Machine) ModFloat(line, col int) error {
	return &RuntimeError{Pos: lang.Pos{Line: line, Col: col}, Msg: "%% requires integer operands"}
}

// IntExpected reports a value required to be integral (checksum counts),
// interp's message text.
func (m *Machine) IntExpected(line, col int) error {
	return &RuntimeError{Pos: lang.Pos{Line: line, Col: col}, Msg: "expected integer value"}
}

// emitVerify mirrors interp.Machine.emitVerify: verify.ok on a match,
// verify.mismatch plus a detection event on a caught memory error.
func (m *Machine) emitVerify(err error) {
	if m.trace == nil && m.metrics == nil {
		return
	}
	if err == nil {
		telemetry.Emit(m.trace, telemetry.EvVerifyOK, map[string]any{
			"def": m.pair.Def, "use": m.pair.Use,
			"e_def": m.pair.EDef, "e_use": m.pair.EUse,
		})
		m.metrics.Counter("defuse_verifications_total",
			telemetry.Label{Key: "result", Value: "ok"}).Inc()
		return
	}
	fields := map[string]any{"error": err.Error()}
	var mm *checksum.MismatchError
	if errors.As(err, &mm) {
		fields["which"] = mm.Which
		fields["expected"] = mm.Expected
		fields["observed"] = mm.Observed
	}
	telemetry.Emit(m.trace, telemetry.EvVerifyMismatch, fields)
	telemetry.Emit(m.trace, telemetry.EvDetection, fields)
	m.metrics.Counter("defuse_verifications_total",
		telemetry.Label{Key: "result", Value: "mismatch"}).Inc()
	m.metrics.Counter("defuse_detections_total").Inc()
}
