package native

import (
	"math"
	"math/bits"
)

// This file provides the dual-checksum ablation: Section 6.2.2 claims that
// "tracking multiple checksums in software would be too expensive to be used
// in practice" and uses that to motivate hardware support. DualCS maintains
// the paper's two-checksum scheme (the second checksum folds values
// left-rotated by an address-derived amount, Section 6.1) entirely in
// software, and CholeskyResilientDual measures what that costs relative to
// the single-checksum resilient variant.

// DualCS is a def/use checksum pair replicated across the plain and the
// address-rotated accumulator.
type DualCS struct {
	def1, use1 uint64
	def2, use2 uint64
}

// rot derives the rotation amount from the element index (the stand-in for
// bits 3..7 of the element's byte address).
func rot(idx int) int { return idx & 0x1f }

// Def folds a defined value n times into both def checksums.
func (c *DualCS) Def(v float64, idx int, n int64) {
	b := fb(v)
	c.def1 += b * uint64(n)
	c.def2 += bits.RotateLeft64(b, rot(idx)) * uint64(n)
}

// Use folds a consumed value into both use checksums.
func (c *DualCS) Use(v float64, idx int) {
	b := fb(v)
	c.use1 += b
	c.use2 += bits.RotateLeft64(b, rot(idx))
}

// Verify compares both pairs.
func (c *DualCS) Verify() error {
	if c.def1 != c.use1 {
		return &mismatch{"dual def/use (plain)"}
	}
	if c.def2 != c.use2 {
		return &mismatch{"dual def/use (rotated)"}
	}
	return nil
}

type mismatch struct{ which string }

func (m *mismatch) Error() string { return "native: checksum mismatch: " + m.which }

// CholeskyResilientDual is the index-set split cholesky instrumentation with
// the two-checksum scheme maintained in software — the ablation for the
// paper's "too expensive in software" claim.
func CholeskyResilientDual(a []float64, n int) error {
	var cs DualCS
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			cs.Def(a[i*n+j], i*n+j, 1)
		}
	}
	for j := 0; j <= n-2; j++ {
		d := j*n + j
		cs.Use(a[d], d)
		a[d] = math.Sqrt(a[d])
		cs.Def(a[d], d, int64(n-1-j))
		for i := j + 1; i < n; i++ {
			cs.Use(a[i*n+j], i*n+j)
			cs.Use(a[d], d)
			a[i*n+j] = a[i*n+j] / a[d]
		}
	}
	if n >= 1 {
		d := (n-1)*n + (n - 1)
		cs.Use(a[d], d)
		a[d] = math.Sqrt(a[d])
	}
	return cs.Verify()
}
