package hwsim

import (
	"testing"

	"defuse/internal/interp"
)

func TestSoftwareCostWeights(t *testing.T) {
	c := interp.OpCounts{Loads: 10, Stores: 5, Arith: 7, Compare: 3, Branches: 2, CsOps: 4, CsLoads: 6, CsArith: 1}
	cfg := DefaultConfig()
	got := SoftwareCostWith(c, cfg)
	want := 4.0*15 + 0*6 + 1.0*(7+3+2+1) + 2.0*4
	if got != want {
		t.Errorf("SoftwareCost = %v, want %v", got, want)
	}
	if SoftwareCost(c) != got {
		t.Error("SoftwareCost should use the default config")
	}
}

func TestHardwareCostDiscountsChecksums(t *testing.T) {
	c := interp.OpCounts{Loads: 10, Stores: 5, Arith: 7, CsOps: 100, CsLoads: 50, CsArith: 2}
	cfg := DefaultConfig()
	hw := HardwareCost(c, cfg)
	sw := SoftwareCostWith(c, cfg)
	if hw >= sw {
		t.Errorf("hardware cost %v should be below software %v", hw, sw)
	}
	// Checksum loads vanish; each op costs NopCost.
	want := 4.0*15 + 1.0*(7+2) + 0.25*100
	if hw != want {
		t.Errorf("HardwareCost = %v, want %v", hw, want)
	}
}

func TestHardwareCostRetainsCounters(t *testing.T) {
	// Counter maintenance shows up as program loads/stores/arith and must
	// stay at full price under hardware support.
	base := interp.OpCounts{Loads: 100, Stores: 50, Arith: 30}
	withCounters := base
	withCounters.Loads += 40 // counter reads
	withCounters.Stores += 40
	cfg := DefaultConfig()
	if HardwareCost(withCounters, cfg) <= HardwareCost(base, cfg) {
		t.Error("counter work must not be discounted by hardware support")
	}
}

func TestOverhead(t *testing.T) {
	orig := interp.OpCounts{Loads: 10, Stores: 10, Arith: 10}
	instr := SoftwareCost(interp.OpCounts{Loads: 10, Stores: 10, Arith: 10, CsOps: 20})
	ov := Overhead(orig, instr)
	if ov <= 1 {
		t.Errorf("overhead = %v, want > 1", ov)
	}
	if Overhead(interp.OpCounts{}, 5) != 1 {
		t.Error("zero-cost original should clamp to 1")
	}
}
