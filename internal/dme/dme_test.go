package dme

import (
	"errors"
	"testing"

	"defuse/internal/lang"
	"defuse/internal/recovery"
)

// step is the campaigns' bijective word update.
func step(v uint64) uint64 { return v*2862933555777941757 + 3037000493 }

// runEpoch advances every logical word once on a variant, optionally
// redirecting one load (wrongAt >= 0 reads partner instead of wrongAt).
func runEpoch(v *Variant, wrongAt, partner int) {
	for i := 0; i < v.Words(); i++ {
		src := i
		if i == wrongAt {
			src = partner
		}
		v.Store(i, step(v.Load(src)))
	}
}

func newPair(words int) (*Variant, *Variant) {
	a := NewVariant(words, 0)
	b := NewVariant(words, words/2)
	for i := 0; i < words; i++ {
		init := mix64(uint64(i) + 7)
		a.Poke(i, init)
		b.Poke(i, init)
	}
	return a, b
}

func TestVariantLayoutDecorrelation(t *testing.T) {
	const words = 16
	a, b := newPair(words)
	if a.Shift() == b.Shift() {
		t.Fatal("variants share a layout shift — no decorrelation")
	}
	// No logical word may be co-located across the two variants: that is the
	// fault-independence argument.
	for i := 0; i < words; i++ {
		if a.phys(i) == b.phys(i) {
			t.Fatalf("logical word %d co-located at physical %d in both variants", i, a.phys(i))
		}
	}
	// Logical semantics are layout-independent.
	a.Store(3, 99)
	if a.Load(3) != 99 || a.Peek(3) != 99 {
		t.Fatal("logical store/load roundtrip broken under a shifted layout")
	}
}

func TestCrossCheckCleanAgreement(t *testing.T) {
	a, b := newPair(32)
	for e := 0; e < 4; e++ {
		runEpoch(a, -1, 0)
		runEpoch(b, -1, 0)
		if err := CrossCheck(a, b); err != nil {
			t.Fatalf("epoch %d: clean variants diverged: %v", e, err)
		}
	}
	if a.Accumulator() != b.Accumulator() || a.Stores() != b.Stores() {
		t.Fatal("clean variants disagree on accumulator or store count")
	}
}

func TestCrossCheckCatchesBitFlip(t *testing.T) {
	a, b := newPair(32)
	a.FlipBit(5, 40)
	runEpoch(a, -1, 0)
	runEpoch(b, -1, 0)
	err := CrossCheck(a, b)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("cross-check returned %v, want *DivergenceError", err)
	}
	if de.RecoveryClass() != recovery.ClassData {
		t.Fatalf("divergence classified as %v, want ClassData", de.RecoveryClass())
	}
}

// TestCrossCheckCatchesAliasRedirect pins the cell the data checksums are
// blind to: a full read-modify-write redirected to a different valid word.
// Only variant A takes the fault, so the variants must diverge.
func TestCrossCheckCatchesAliasRedirect(t *testing.T) {
	a, b := newPair(32)
	runEpoch(a, 4, 9) // A's word 4 update reads word 9 instead
	runEpoch(b, -1, 0)
	if err := CrossCheck(a, b); err == nil {
		t.Fatal("aliased read-modify-write did not diverge the variants")
	}
}

// TestCrossCheckOutputAccumulatorPlacement: the accumulators catch
// wrong-placement faults even when the value multisets agree — two variants
// that stored the same values at traded logical indices must diverge.
func TestCrossCheckOutputAccumulator(t *testing.T) {
	a := NewVariant(4, 0)
	b := NewVariant(4, 2)
	a.Store(0, 111)
	a.Store(1, 222)
	b.Store(0, 222)
	b.Store(1, 111)
	err := CrossCheck(a, b)
	var de *DivergenceError
	if !errors.As(err, &de) || de.Site != "output" {
		t.Fatalf("traded stores returned %v, want output-accumulator divergence", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	a, _ := newPair(16)
	runEpoch(a, -1, 0)
	snap := a.Snapshot()
	wantAcc, wantStores := a.Accumulator(), a.Stores()

	runEpoch(a, 2, 7) // a faulty epoch to roll back
	if err := a.Restore(snap); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	if a.Accumulator() != wantAcc || a.Stores() != wantStores {
		t.Fatal("restore did not recover accumulator state")
	}
	// Re-executing the epoch cleanly from the checkpoint reconverges with a
	// clean twin.
	b := NewVariant(16, 8)
	for i := 0; i < 16; i++ {
		b.Poke(i, a.Peek(i))
	}
	runEpoch(a, -1, 0)
	runEpoch(b, -1, 0)
	for i := 0; i < 16; i++ {
		if a.Peek(i) != b.Peek(i) {
			t.Fatalf("word %d differs after rollback re-execution", i)
		}
	}

	// A tampered seal is refused by Restore and accepted by the unchecked
	// path (whose integrity is vouched for elsewhere).
	bad := snap
	bad.out ^= 1
	if err := a.Restore(bad); err == nil {
		t.Fatal("restore accepted a tampered snapshot")
	}
	if err := a.RestoreUnchecked(snap); err != nil {
		t.Fatalf("unchecked restore failed: %v", err)
	}
}

func TestNewVariantValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVariant(0, ...) did not panic")
		}
	}()
	NewVariant(0, 1)
}

func TestCrossCheckSizeMismatch(t *testing.T) {
	if err := CrossCheck(NewVariant(4, 0), NewVariant(8, 1)); err == nil {
		t.Fatal("cross-check over mismatched regions did not error")
	}
}

const pairSrc = `
program t(n)
float A[n];
float sum;
for i = 0 to n - 1 {
  A[i] = i * 2 + 1;
}
sum = 0.0;
for i = 0 to n - 1 {
  sum += A[i];
  A[i] = A[i] * 0.5;
}
`

// TestPairCleanAgreement: the same program on two offset layouts produces
// bit-identical results.
func TestPairCleanAgreement(t *testing.T) {
	p, err := NewPair(lang.MustParse(pairSrc), map[string]int64{"n": 32}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if err := p.CrossCheckFloats("A", "sum"); err != nil {
		t.Fatalf("clean pair diverged: %v", err)
	}
}

// TestPairCatchesCorruption: corrupting one element in one machine's array
// after the run is flagged with the variable and index named.
func TestPairCatchesCorruption(t *testing.T) {
	p, err := NewPair(lang.MustParse(pairSrc), map[string]int64{"n": 16}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if err := p.A.SetFloat("A", -1234.5, 5); err != nil {
		t.Fatal(err)
	}
	err = p.CrossCheckFloats("A")
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("cross-check returned %v, want *DivergenceError", err)
	}
	if de.Site != "A" || de.Word != 5 {
		t.Fatalf("divergence pinned to %s[%d], want A[5]", de.Site, de.Word)
	}
}

func TestPairRequiresOffset(t *testing.T) {
	if _, err := NewPair(lang.MustParse(pairSrc), map[string]int64{"n": 4}, 0); err == nil {
		t.Fatal("NewPair accepted a zero layout offset")
	}
}
