package native

import "testing"

func TestCholeskyDualVariant(t *testing.T) {
	for _, n := range []int{1, 3, 8, 17} {
		ref := choleskyInput(n, 1)
		Cholesky(ref, n)
		a := choleskyInput(n, 1)
		if err := CholeskyResilientDual(a, n); err != nil {
			t.Fatalf("n=%d: false positive: %v", n, err)
		}
		equalBits(t, "A", ref, a)
	}
}

func TestDualCSDetectsRotatedOnlyError(t *testing.T) {
	// The canonical single-checksum escape: two aligned opposite flips that
	// cancel in the plain sum. The rotated checksum catches it because the
	// two cells rotate by different amounts.
	var cs DualCS
	v1, v2 := 1.5, 2.5
	cs.Def(v1, 3, 1)
	cs.Def(v2, 5, 1)
	// Uses observe v1 with bit 20 set and v2 with bit 20 cleared... build
	// values whose plain contributions cancel exactly.
	b1 := fb(v1) + (1 << 20)
	b2 := fb(v2) - (1 << 20)
	cs.use1 += b1 + b2
	cs.use2 += rotl(b1, rot(3)) + rotl(b2, rot(5))
	if cs.def1 != cs.use1 {
		t.Fatal("setup: plain checksums should collide")
	}
	if err := cs.Verify(); err == nil {
		t.Error("rotated checksum failed to catch aligned cancellation")
	}
}

func rotl(v uint64, r int) uint64 { return v<<uint(r) | v>>uint(64-r) }

func BenchmarkNativeCholeskyDual(b *testing.B) {
	// Ablation for the paper's "multiple checksums too expensive in
	// software" claim: compare against BenchmarkNativeCholesky/ResilientOpt.
	const n = 96
	a := choleskyInput(n, 9)
	work := make([]float64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, a)
		if err := CholeskyResilientDual(work, n); err != nil {
			b.Fatal(err)
		}
	}
}
