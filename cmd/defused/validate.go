package main

import (
	"errors"
	"fmt"
	"time"
)

// flagValues carries the CLI flags that admit nonsense values a typo away
// from a sane one. validateFlags rejects them at startup — a service that
// boots with -max-inflight 0 would deadlock on its first request, and a
// fault rate of 1.5 would silently clamp somewhere downstream.
type flagValues struct {
	MaxInFlight     int
	Queue           int
	FaultRate       float64
	FaultAddrFrac   float64
	DrainTimeout    time.Duration
	WALSegmentBytes int64
	SoakDuration    time.Duration
}

func validateFlags(v flagValues) error {
	var errs []error
	if v.MaxInFlight <= 0 {
		errs = append(errs, fmt.Errorf("-max-inflight must be positive, got %d", v.MaxInFlight))
	}
	if v.Queue < 0 {
		errs = append(errs, fmt.Errorf("-queue must not be negative, got %d (0 means 2*max-inflight)", v.Queue))
	}
	if v.FaultRate < 0 || v.FaultRate > 1 {
		errs = append(errs, fmt.Errorf("-fault-rate must be in [0,1], got %g", v.FaultRate))
	}
	if v.FaultAddrFrac < 0 || v.FaultAddrFrac > 1 {
		errs = append(errs, fmt.Errorf("-fault-addr-frac must be in [0,1], got %g", v.FaultAddrFrac))
	}
	if v.DrainTimeout <= 0 {
		errs = append(errs, fmt.Errorf("-drain-timeout must be positive, got %s", v.DrainTimeout))
	}
	if v.WALSegmentBytes < 0 {
		errs = append(errs, fmt.Errorf("-wal-segment-bytes must not be negative, got %d (0 means the 64 MiB default)", v.WALSegmentBytes))
	}
	if v.SoakDuration < 0 {
		errs = append(errs, fmt.Errorf("-soak-duration must not be negative, got %s (0 means the 30s default)", v.SoakDuration))
	}
	return errors.Join(errs...)
}
