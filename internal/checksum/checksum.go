// Package checksum implements the checksum operators used by the def-use
// error detection scheme of Tavarageri et al. (PLDI 2014), "Compiler-Assisted
// Detection of Transient Memory Errors".
//
// The scheme needs a commutative and associative operator so that values can
// be folded into a running def-checksum and use-checksum in any order; the
// paper selects integer modulo addition for its hardware efficiency and fault
// coverage (Section 5). This package provides that operator plus the
// alternatives discussed in the paper's related work (XOR, one's-complement
// addition) and the position-dependent checksums from Maxino's comparison
// (Fletcher, Adler) that are used only in whole-array coverage experiments.
package checksum

import (
	"fmt"
	"math/bits"
)

// Kind identifies a checksum operator.
type Kind int

// The supported checksum operators. ModAdd is the operator the paper uses
// for def/use checksums; the others are provided for the fault-coverage
// comparison (Section 6.1 and Maxino's study).
const (
	// ModAdd is integer addition modulo 2^64 (two's-complement wraparound),
	// the paper's operator of choice.
	ModAdd Kind = iota
	// XOR is bitwise exclusive or.
	XOR
	// OnesComp is one's-complement addition (addition modulo 2^64-1 with
	// end-around carry), the operator used by the Internet checksum.
	OnesComp
	// Fletcher64 is a Fletcher-style position-dependent checksum built from
	// two modular sums. It is not commutative across elements and therefore
	// cannot serve as the def/use operator; it participates only in
	// whole-array coverage experiments.
	Fletcher64
	// Adler64 is an Adler-style variant of Fletcher64 using prime moduli.
	Adler64
)

var kindNames = map[Kind]string{
	ModAdd:     "modadd",
	XOR:        "xor",
	OnesComp:   "onescomp",
	Fletcher64: "fletcher64",
	Adler64:    "adler64",
}

// String returns the lower-case name of the operator.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("checksum.Kind(%d)", int(k))
}

// Commutative reports whether the operator is commutative and associative and
// hence usable as a def/use checksum operator.
func (k Kind) Commutative() bool {
	switch k {
	case ModAdd, XOR, OnesComp:
		return true
	}
	return false
}

// onesCompMod is the modulus of one's-complement 64-bit addition.
const onesCompMod = ^uint64(0) // 2^64 - 1

// Combine folds value v into accumulator acc under operator k. Combine is
// commutative and associative for the operators for which Commutative
// reports true; it panics for position-dependent operators.
func Combine(k Kind, acc, v uint64) uint64 {
	switch k {
	case ModAdd:
		return acc + v
	case XOR:
		return acc ^ v
	case OnesComp:
		return onesCompAdd(acc, v)
	}
	panic(fmt.Sprintf("checksum: Combine on non-commutative operator %v", k))
}

// ScaleCombine folds v into acc n times under operator k. n may be negative,
// in which case the contribution is removed n times (the paper's epilogue
// adjustment "add use_count - 1 times" relies on this when use_count is 0).
func ScaleCombine(k Kind, acc, v uint64, n int64) uint64 {
	switch k {
	case ModAdd:
		return acc + v*uint64(n) // two's-complement wraparound handles n < 0
	case XOR:
		if n&1 != 0 {
			return acc ^ v
		}
		return acc
	case OnesComp:
		return onesCompAdd(acc, onesCompScale(v, n))
	}
	panic(fmt.Sprintf("checksum: ScaleCombine on non-commutative operator %v", k))
}

// onesCompAdd adds a and b with end-around carry (arithmetic mod 2^64-1,
// treating 0 and 2^64-1 as the same residue, canonicalized to keep sums
// stable).
func onesCompAdd(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	s += carry
	if s == onesCompMod {
		s = 0
	}
	return s
}

// onesCompScale computes v*n mod 2^64-1 for a possibly negative n.
func onesCompScale(v uint64, n int64) uint64 {
	neg := n < 0
	un := uint64(n)
	if neg {
		un = uint64(-n)
	}
	v %= onesCompMod
	hi, lo := bits.Mul64(v, un%onesCompMod)
	// hi <= v <= 2^64-2 < onesCompMod, so Rem64 is safe.
	r := bits.Rem64(hi, lo, onesCompMod)
	if neg && r != 0 {
		r = onesCompMod - r
	}
	return r
}

// Rotation selects the left-rotate amount for the second (auxiliary) checksum
// of the paper's two-checksum scheme: bits 3..7 of the value's byte address,
// giving an amount in [0, 31]. Elements of a []uint64 at byte offset 8*i from
// an aligned base therefore rotate by i mod 32.
func Rotation(byteAddr uintptr) int {
	return int((byteAddr >> 3) & 0x1f)
}

// RotateForIndex returns the rotation for the i-th 8-byte element of an
// aligned array.
func RotateForIndex(i int) int { return i & 0x1f }

// Rotl left-rotates v by r bits (r taken mod 64).
func Rotl(v uint64, r int) uint64 { return bits.RotateLeft64(v, r) }
