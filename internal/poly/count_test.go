package poly

import (
	"math/rand"
	"testing"
)

// countByEnumeration brute-forces |b| for given parameter values.
func countByEnumeration(b BasicSet, params map[string]int64, bound int64) int64 {
	return int64(len(b.EnumeratePoints(params, bound)))
}

func TestCardBox(t *testing.T) {
	// |{ [i] : 0 <= i <= n-1 }| = n for n >= 1, 0 otherwise.
	b := NewBasicSet("S", "i").With(Ge(V("i"), L(0)), Le(V("i"), V("n").AddConst(-1)))
	pw, err := Card(b)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 6; n++ {
		got, _, err := pw.Eval(map[string]int64{"n": n})
		if err != nil {
			t.Fatal(err)
		}
		want := n
		if n < 0 {
			want = 0
		}
		if got != want {
			t.Errorf("n=%d: count = %d, want %d", n, got, want)
		}
	}
}

func TestCardPaperExampleAlgorithm1(t *testing.T) {
	// Section 3.2: |Targets_1^param| for cholesky S1 is n-1-jp on
	// 0 <= jp <= n-2, and 0 when jp = n-1 (last iteration has no targets).
	d := choleskyFlow()
	src := NewBasicSet("S1", "j").With(Eq(V("j"), V("jp")))
	img, exact := d.Apply(src)
	if !exact {
		t.Fatal("apply inexact")
	}
	pw, err := Card(img)
	if err != nil {
		t.Fatal(err)
	}
	// The non-zero pieces should all carry the single polynomial n - jp - 1.
	poly, single := pw.IsSinglePolynomial()
	if !single {
		t.Fatalf("expected a single polynomial, got %v", pw)
	}
	wantPoly := PolyFromLin(V("n").Sub(V("jp")).AddConst(-1))
	if !poly.Equal(wantPoly) {
		t.Errorf("use count polynomial = %v, want %v", poly, wantPoly)
	}
	// Numeric check across the domain, including the excluded last iteration.
	n := int64(8)
	for jp := int64(0); jp <= n-1; jp++ {
		got, inDomain, err := pw.Eval(map[string]int64{"jp": jp, "n": n})
		if err != nil {
			t.Fatal(err)
		}
		want := n - 1 - jp
		if jp == n-1 {
			want = 0
		}
		if !inDomain {
			t.Errorf("jp=%d: no piece matched", jp)
		}
		if got != want {
			t.Errorf("jp=%d: use count = %d, want %d", jp, got, want)
		}
	}
}

func TestCardTriangular(t *testing.T) {
	// |{ [j,i] : 0 <= j <= n-1, j+1 <= i <= n-1 }| = n(n-1)/2 — exercises
	// Faulhaber summation because the inner extent depends on j.
	pw, err := Card(choleskyS2())
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 10; n++ {
		got, _, err := pw.Eval(map[string]int64{"n": n})
		if err != nil {
			t.Fatal(err)
		}
		want := n * (n - 1) / 2
		if n <= 0 {
			want = 0
		}
		if got != want {
			t.Errorf("n=%d: |S2| = %d, want %d", n, got, want)
		}
	}
}

func TestCardWithEqualityDims(t *testing.T) {
	// { [a,b] : a = n and 0 <= b <= 4 } has 5 points.
	b := NewBasicSet("S", "a", "b").With(
		Eq(V("a"), V("n")), Ge(V("b"), L(0)), Le(V("b"), L(4)))
	pw, err := Card(b)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pw.Eval(map[string]int64{"n": 100})
	if err != nil || got != 5 {
		t.Errorf("count = %d (%v), want 5", got, err)
	}
}

func TestCardMultipleLowerBounds(t *testing.T) {
	// { [i] : i >= a and i >= b and i <= 10 }: count = 10 - max(a,b) + 1.
	b := NewBasicSet("S", "i").With(Ge(V("i"), V("a")), Ge(V("i"), V("b")), Le(V("i"), L(10)))
	pw, err := Card(b)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(-2); a <= 12; a++ {
		for bb := int64(-2); bb <= 12; bb++ {
			got, _, err := pw.Eval(map[string]int64{"a": a, "b": bb})
			if err != nil {
				t.Fatal(err)
			}
			m := a
			if bb > m {
				m = bb
			}
			want := 10 - m + 1
			if want < 0 {
				want = 0
			}
			if got != want {
				t.Errorf("a=%d b=%d: count = %d, want %d", a, bb, got, want)
			}
		}
	}
}

func TestCardMultipleUpperBounds(t *testing.T) {
	// { [i] : 0 <= i <= a and i <= b }: count = min(a,b)+1 when >= 0.
	b := NewBasicSet("S", "i").With(Ge(V("i"), L(0)), Le(V("i"), V("a")), Le(V("i"), V("b")))
	pw, err := Card(b)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(-2); a <= 6; a++ {
		for bb := int64(-2); bb <= 6; bb++ {
			got, _, err := pw.Eval(map[string]int64{"a": a, "b": bb})
			if err != nil {
				t.Fatal(err)
			}
			m := a
			if bb < m {
				m = bb
			}
			want := m + 1
			if want < 0 {
				want = 0
			}
			if got != want {
				t.Errorf("a=%d b=%d: count = %d, want %d", a, bb, got, want)
			}
		}
	}
}

func TestCardUnboundedFails(t *testing.T) {
	b := NewBasicSet("S", "i").With(Ge(V("i"), L(0))) // no upper bound
	if _, err := Card(b); err == nil {
		t.Error("unbounded set should not be countable")
	}
	if _, ok := err2Reason(err3(b)); !ok {
		// placeholder to use helper below
	}
}

// helpers to exercise the CountError type
func err3(b BasicSet) error { _, err := Card(b); return err }
func err2Reason(err error) (string, bool) {
	ce, ok := err.(*CountError)
	if !ok {
		return "", false
	}
	return ce.Reason, true
}

func TestCardErrorType(t *testing.T) {
	b := NewBasicSet("S", "i").With(Ge(V("i"), L(0)))
	_, err := Card(b)
	ce, ok := err.(*CountError)
	if !ok {
		t.Fatalf("error type %T, want *CountError", err)
	}
	if ce.Error() == "" {
		t.Error("empty error message")
	}
}

func TestCardNonUnitCoefficientFails(t *testing.T) {
	// { [i] : 0 <= 2i <= n } needs floor division: not a polynomial count.
	b := NewBasicSet("S", "i").With(GeZero(Term(2, "i")), Le(Term(2, "i"), V("n")))
	if _, err := Card(b); err == nil {
		t.Error("non-unit coefficient should not be countable")
	}
}

func TestCardEmptySet(t *testing.T) {
	b := NewBasicSet("S", "i").With(Ge(V("i"), L(5)), Le(V("i"), L(3)))
	pw, err := Card(b)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := pw.Eval(nil)
	if got != 0 {
		t.Errorf("empty set count = %d", got)
	}
}

func TestCardZeroDimSet(t *testing.T) {
	// A 0-dimensional set has exactly one point when its (parameter)
	// constraints hold.
	b := NewBasicSet("S").With(Ge(V("n"), L(1)))
	pw, err := Card(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, in, _ := pw.Eval(map[string]int64{"n": 3}); got != 1 || !in {
		t.Errorf("count = %d in=%v, want 1 true", got, in)
	}
	if got, _, _ := pw.Eval(map[string]int64{"n": 0}); got != 0 {
		t.Errorf("outside domain count = %d, want 0", got)
	}
}

func TestCardSumDisjointUnion(t *testing.T) {
	a := NewBasicSet("S", "i").With(Ge(V("i"), L(0)), Le(V("i"), L(4)))
	b := NewBasicSet("S", "i").With(Ge(V("i"), L(10)), Le(V("i"), L(14)))
	pw, err := CardSum(UnionSet(a, b))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, p := range pw.Pieces {
		if p.DomainContains(nil) {
			v, err := p.Count.EvalInt(nil)
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
	}
	if total != 10 {
		t.Errorf("disjoint union count = %d, want 10", total)
	}
}

func TestCardPiecesDisjoint(t *testing.T) {
	// Every parameter point must match at most one piece.
	d := choleskyFlow()
	src := NewBasicSet("S1", "j").With(Eq(V("j"), V("jp")))
	img, _ := d.Apply(src)
	pw, err := Card(img)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 6; n++ {
		for jp := int64(-1); jp <= n; jp++ {
			hits := 0
			for _, p := range pw.Pieces {
				if p.DomainContains(map[string]int64{"jp": jp, "n": n}) {
					hits++
				}
			}
			if hits > 1 {
				t.Errorf("jp=%d n=%d matched %d pieces", jp, n, hits)
			}
		}
	}
}

// TestCardAgainstEnumeration cross-validates the symbolic count against
// brute-force enumeration on random 2D systems from the countable fragment.
func TestCardAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trials := 0
	for trials < 120 {
		b := NewBasicSet("S", "x", "y")
		// Random bounds: c1 <= x <= c2, l(x) <= y <= u(x) with unit coeffs.
		c1 := int64(rng.Intn(5) - 2)
		c2 := c1 + int64(rng.Intn(6))
		b = b.With(Ge(V("x"), L(c1)), Le(V("x"), L(c2)))
		loCoef := int64(rng.Intn(3) - 1)
		hiCoef := int64(rng.Intn(3) - 1)
		lo := Term(loCoef, "x").AddConst(int64(rng.Intn(5) - 2))
		hi := Term(hiCoef, "x").AddConst(int64(rng.Intn(8)))
		b = b.With(Ge(V("y"), lo), Le(V("y"), hi))

		pw, err := Card(b)
		if err != nil {
			continue // outside countable fragment; fine
		}
		trials++
		want := countByEnumeration(b, nil, 20)
		var got int64
		for _, p := range pw.Pieces {
			if p.DomainContains(nil) {
				v, err := p.Count.EvalInt(nil)
				if err != nil {
					t.Fatal(err)
				}
				got += v
			}
		}
		if got != want {
			t.Fatalf("trial %d: symbolic %d != enumerated %d for %v\npieces: %v",
				trials, got, want, b, pw)
		}
	}
}

func TestPieceString(t *testing.T) {
	pw, err := Card(choleskyS1())
	if err != nil {
		t.Fatal(err)
	}
	if pw.String() == "" {
		t.Error("empty piecewise string")
	}
	for _, p := range pw.Pieces {
		if p.String() == "" {
			t.Error("empty piece string")
		}
	}
}
