package codegen

import (
	"fmt"
	"math"
)

// Host-side data interface, method-for-method compatible with interp's
// (bench.DataHost is the shared abstraction): initializing program variables
// before a run and reading results after. These accessors use Peek/Poke so
// they do not perturb the program's load/store accounting.

func (m *Machine) info(name string) (*varInfo, error) {
	vi := m.vars[name]
	if vi == nil {
		return nil, fmt.Errorf("codegen: no variable %q", name)
	}
	return vi, nil
}

func (m *Machine) flatIndex(name string, vi *varInfo, idx []int64) (int, error) {
	if len(idx) != len(vi.dims) {
		return 0, fmt.Errorf("codegen: %q has %d dims, got %d indices", name, len(vi.dims), len(idx))
	}
	addr := int64(0)
	for k, ix := range idx {
		if ix < 0 || ix >= vi.dims[k] {
			return 0, fmt.Errorf("codegen: index %d out of bounds for dim %d of %q", ix, k, name)
		}
		addr = addr*vi.dims[k] + ix
	}
	return vi.region.Base + int(addr), nil
}

// SetFloat initializes a float variable element.
func (m *Machine) SetFloat(name string, v float64, idx ...int64) error {
	vi, err := m.info(name)
	if err != nil {
		return err
	}
	if vi.isInt {
		return fmt.Errorf("codegen: %q is not float", name)
	}
	addr, err := m.flatIndex(name, vi, idx)
	if err != nil {
		return err
	}
	m.mem.Poke(addr, math.Float64bits(v))
	return nil
}

// SetInt initializes an int variable element.
func (m *Machine) SetInt(name string, v int64, idx ...int64) error {
	vi, err := m.info(name)
	if err != nil {
		return err
	}
	if !vi.isInt {
		return fmt.Errorf("codegen: %q is not int", name)
	}
	addr, err := m.flatIndex(name, vi, idx)
	if err != nil {
		return err
	}
	m.mem.Poke(addr, uint64(v))
	return nil
}

// Float reads a float variable element.
func (m *Machine) Float(name string, idx ...int64) (float64, error) {
	vi, err := m.info(name)
	if err != nil {
		return 0, err
	}
	if vi.isInt {
		return 0, fmt.Errorf("codegen: %q is not float", name)
	}
	addr, err := m.flatIndex(name, vi, idx)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(m.mem.Peek(addr)), nil
}

// Int reads an int variable element.
func (m *Machine) Int(name string, idx ...int64) (int64, error) {
	vi, err := m.info(name)
	if err != nil {
		return 0, err
	}
	if !vi.isInt {
		return 0, fmt.Errorf("codegen: %q is not int", name)
	}
	addr, err := m.flatIndex(name, vi, idx)
	if err != nil {
		return 0, err
	}
	return int64(m.mem.Peek(addr)), nil
}

// FillFloat initializes every element of a float array via gen(flatIndex).
func (m *Machine) FillFloat(name string, gen func(flat int64) float64) error {
	vi, err := m.info(name)
	if err != nil {
		return err
	}
	if vi.isInt {
		return fmt.Errorf("codegen: %q is not float", name)
	}
	for k := 0; k < vi.region.Size; k++ {
		m.mem.Poke(vi.region.Base+k, math.Float64bits(gen(int64(k))))
	}
	return nil
}

// FillInt initializes every element of an int array via gen(flatIndex).
func (m *Machine) FillInt(name string, gen func(flat int64) int64) error {
	vi, err := m.info(name)
	if err != nil {
		return err
	}
	if !vi.isInt {
		return fmt.Errorf("codegen: %q is not int", name)
	}
	for k := 0; k < vi.region.Size; k++ {
		m.mem.Poke(vi.region.Base+k, uint64(gen(int64(k))))
	}
	return nil
}

// Region returns the memory region of a variable (for targeted fault
// injection into a specific array).
func (m *Machine) Region(name string) (base, size int, err error) {
	vi, err := m.info(name)
	if err != nil {
		return 0, 0, err
	}
	return vi.region.Base, vi.region.Size, nil
}

// SnapshotFloats copies out a float array's contents (row-major).
func (m *Machine) SnapshotFloats(name string) ([]float64, error) {
	vi, err := m.info(name)
	if err != nil {
		return nil, err
	}
	if vi.isInt {
		return nil, fmt.Errorf("codegen: %q is not float", name)
	}
	out := make([]float64, vi.region.Size)
	for k := range out {
		out[k] = math.Float64frombits(m.mem.Peek(vi.region.Base + k))
	}
	return out, nil
}
