package bench

import (
	"runtime"
	"testing"
)

// RunScaling's primary evidence is deterministic: the critical-path op count
// under the software cost model (serial prologue/epilogue plus the largest
// worker block) must shrink as workers grow, regardless of how many physical
// cores the host has. Wall-clock speedup is asserted only on hosts that can
// actually exhibit it.

func TestRunScalingDsyrkOpsSpeedup(t *testing.T) {
	b, err := ByName("dsyrk")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunScaling(b, 0.004, []int{1, 2, 4}, Telemetry{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%d workers: run not verified", r.Workers)
		}
	}
	if rows[0].OpsSpeedup != 1.0 {
		t.Errorf("1-worker ops speedup %.3f, want 1.0 (it is the baseline)", rows[0].OpsSpeedup)
	}
	// The ISSUE acceptance bar: >=2x critical-path speedup at 4 workers on
	// the large affine kernel. dsyrk's kernel dominates its registration
	// loops, so 4-way row-blocking lands near 3.7x.
	if rows[2].OpsSpeedup < 2.0 {
		t.Errorf("4-worker ops speedup %.3f, want >= 2.0", rows[2].OpsSpeedup)
	}
	if rows[1].OpsSpeedup <= rows[0].OpsSpeedup || rows[2].OpsSpeedup <= rows[1].OpsSpeedup {
		t.Errorf("ops speedup not monotonic: %.3f, %.3f, %.3f",
			rows[0].OpsSpeedup, rows[1].OpsSpeedup, rows[2].OpsSpeedup)
	}
	// Wall clock only scales when there are cores to scale onto; on a
	// single-core host the interpreter time-slices and parity is expected.
	if runtime.NumCPU() >= 4 {
		if rows[2].Seconds >= rows[0].Seconds {
			t.Errorf("4-worker wall %.4fs not below 1-worker wall %.4fs on a %d-CPU host",
				rows[2].Seconds, rows[0].Seconds, runtime.NumCPU())
		}
	} else {
		t.Logf("host has %d CPU(s); skipping wall-clock speedup assertion (ops speedup %.3f at 4 workers)",
			runtime.NumCPU(), rows[2].OpsSpeedup)
	}
}

func TestRunScalingRejectsUnsafeKernel(t *testing.T) {
	b, err := ByName("ADI")
	if err != nil {
		t.Fatal(err)
	}
	if b.ParallelSafe {
		t.Fatal("ADI marked ParallelSafe; test premise broken")
	}
	if _, err := RunScaling(b, 0.004, []int{1, 2}, Telemetry{}); err == nil {
		t.Fatal("RunScaling accepted a kernel whose iterations share stored words")
	}
}
