package faults

import (
	"context"

	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/rt"
	"defuse/telemetry"
)

// This file runs one epoch-structured injection trial. Unlike the classic
// Table 1 experiment (one checksum over a dead array), the epoch trial keeps
// the array live: every epoch loads each word, advances it through a
// bijective update, and stores it back under the rt def/use discipline. At
// every epoch boundary the trial finalizes all live variables so the
// checksums are quiescent, verifies them, and re-registers the words for the
// next epoch — the paper's post-dominator verification placement applied per
// iteration block. A fault injected inside epoch k therefore either aliases
// (escapes, as in Table 1) or is detected at epoch k's own boundary:
// detection latency zero. With EndOnlyVerify the same trial verifies only at
// the final boundary, measuring the latency the epoch scheme removes, and
// with Recover the trial runs under the checkpoint/rollback supervisor and
// reports whether the corrupted run was steered back to the correct final
// state.

// update advances one word per epoch. It is a bijective (odd-multiplier) LCG
// step, so any corruption of a word propagates to a wrong final state rather
// than being coincidentally reconverged.
func update(v uint64) uint64 { return v*2862933555777941757 + 3037000493 }

// epochTrialSnap checkpoints everything an epoch mutates: the simulated
// memory, the tracker's sealed epoch state, and the shadow use counters. The
// injection plan is deliberately outside the snapshot — a transient fault
// does not recur when the epoch re-executes.
type epochTrialSnap struct {
	mem      []uint64
	state    rt.EpochState
	counters []rt.Counter
}

// runEpochTrial executes one supervised epoch trial and tallies its outcome.
func runEpochTrial(ctx context.Context, cfg CoverageConfig, trial int) (trialTally, error) {
	words, epochs := cfg.Words, cfg.Epochs
	in := NewInjector(trialSeed(cfg.Seed, trial))

	init := make([]uint64, words)
	in.Fill(init, cfg.Pattern)
	injEpoch := in.Intn(epochs)
	injWord := in.Intn(words)
	flips := in.PickBits(words, cfg.BitFlips)

	mem := memsim.New(words)
	tr := rt.NewTrackerWith(cfg.Kind)
	counters := make([]rt.Counter, words)
	for i := 0; i < words; i++ {
		mem.Poke(i, init[i])
		rt.DefDyn(tr, &counters[i], uint64(0), init[i])
	}
	injected := false

	run := func(k int) error {
		for i := 0; i < words; i++ {
			if !injected && k == injEpoch && i == injWord {
				for _, f := range flips {
					mem.FlipBit(f.Word, f.Bit)
				}
				injected = true
				if cfg.Trace != nil {
					coords := make([]map[string]any, len(flips))
					for fi, f := range flips {
						coords[fi] = map[string]any{"word": f.Word, "bit": f.Bit}
					}
					telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
						"trial": trial, "epoch": k, "flips": coords,
						"scheme": "epoch", "words": words,
					})
				}
			}
			v := rt.Use(tr, &counters[i], mem.Load(i))
			next := update(v)
			mem.Store(i, next)
			rt.DefDyn(tr, &counters[i], v, next)
		}
		return nil
	}

	verify := func(k int) error {
		last := k == epochs-1
		if cfg.EndOnlyVerify && !last {
			return nil
		}
		// Finalize every live variable so the boundary is checksum-quiescent,
		// verify, then re-register the survivors for the next epoch.
		for i := 0; i < words; i++ {
			rt.Final(tr, &counters[i], mem.Peek(i))
		}
		_, err := tr.EndEpoch()
		if !last && err == nil {
			for i := 0; i < words; i++ {
				rt.DefDyn(tr, &counters[i], uint64(0), mem.Peek(i))
			}
		}
		return err
	}

	pol := recovery.Policy{}
	if cfg.Recover {
		retries := cfg.MaxRetries
		if retries <= 0 {
			retries = 2
		}
		// No backoff pause inside the simulation: a retry re-executes
		// immediately so campaigns stay fast and deterministic in wall time.
		pol = recovery.Policy{MaxRetries: retries, MaxRestarts: 1}
	}

	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs: epochs,
		Run:    run,
		Verify: verify,
		Checkpoint: func() any {
			return epochTrialSnap{
				mem:      mem.Snapshot(),
				state:    tr.BeginEpoch(),
				counters: append([]rt.Counter(nil), counters...),
			}
		},
		Restore: func(snap any) {
			s := snap.(epochTrialSnap)
			mem.Restore(s.mem)
			if rerr := tr.Rollback(s.state); rerr != nil {
				panic(rerr) // unreachable: every snapshot above is sealed
			}
			copy(counters, s.counters)
		},
		Policy:  pol,
		Trace:   cfg.Trace,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return trialTally{}, err
	}

	tally := trialTally{
		undetected: !out.Detected,
		detected:   out.Detected,
		tainted:    out.Tainted,
		retries:    out.Retries,
		restarts:   out.Restarts,
	}
	if out.Detected {
		tally.latency = out.FirstDetection - injEpoch
	}
	if out.Recovered && finalStateCorrect(mem, init, epochs) {
		tally.recovered = true
	}

	cellMetrics(cfg, tally.undetected)
	labels := cellLabels(cfg)
	if tally.detected {
		cfg.Metrics.Histogram("defuse_detection_latency_epochs",
			telemetry.EpochBuckets(), labels...).Observe(float64(tally.latency))
	}
	if tally.recovered {
		cfg.Metrics.Counter("defuse_recovery_recovered_total", labels...).Inc()
	}
	return tally, nil
}

// finalStateCorrect reports whether the memory holds exactly the state a
// fault-free run would have produced: every word advanced epochs times from
// its initial value.
func finalStateCorrect(mem *memsim.Memory, init []uint64, epochs int) bool {
	for i, v := range init {
		for e := 0; e < epochs; e++ {
			v = update(v)
		}
		if mem.Peek(i) != v {
			return false
		}
	}
	return true
}
