package main

import (
	"strings"
	"testing"
	"time"
)

func sane() flagValues {
	return flagValues{
		MaxInFlight:  4,
		Queue:        8,
		FaultRate:    0.05,
		DrainTimeout: 30 * time.Second,
	}
}

func TestValidateFlagsAcceptsSane(t *testing.T) {
	if err := validateFlags(sane()); err != nil {
		t.Fatalf("sane flags rejected: %v", err)
	}
	// Boundary values are all legal.
	v := sane()
	v.Queue = 0
	v.FaultRate = 1
	v.FaultAddrFrac = 1
	v.DrainTimeout = time.Nanosecond
	if err := validateFlags(v); err != nil {
		t.Fatalf("boundary flags rejected: %v", err)
	}
}

func TestValidateFlagsRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*flagValues)
		want   string
	}{
		{"zero max-inflight", func(v *flagValues) { v.MaxInFlight = 0 }, "-max-inflight"},
		{"negative max-inflight", func(v *flagValues) { v.MaxInFlight = -3 }, "-max-inflight"},
		{"negative queue", func(v *flagValues) { v.Queue = -1 }, "-queue"},
		{"fault rate above one", func(v *flagValues) { v.FaultRate = 1.5 }, "-fault-rate"},
		{"negative fault rate", func(v *flagValues) { v.FaultRate = -0.1 }, "-fault-rate"},
		{"addr frac above one", func(v *flagValues) { v.FaultAddrFrac = 2 }, "-fault-addr-frac"},
		{"negative addr frac", func(v *flagValues) { v.FaultAddrFrac = -1 }, "-fault-addr-frac"},
		{"zero drain timeout", func(v *flagValues) { v.DrainTimeout = 0 }, "-drain-timeout"},
		{"negative drain timeout", func(v *flagValues) { v.DrainTimeout = -time.Second }, "-drain-timeout"},
		{"negative segment bytes", func(v *flagValues) { v.WALSegmentBytes = -1 }, "-wal-segment-bytes"},
		{"negative soak duration", func(v *flagValues) { v.SoakDuration = -time.Second }, "-soak-duration"},
	}
	for _, tc := range cases {
		v := sane()
		tc.mutate(&v)
		err := validateFlags(v)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

func TestValidateFlagsJoinsAllViolations(t *testing.T) {
	v := sane()
	v.MaxInFlight = 0
	v.FaultRate = 7
	v.DrainTimeout = 0
	err := validateFlags(v)
	if err == nil {
		t.Fatal("accepted")
	}
	for _, want := range []string{"-max-inflight", "-fault-rate", "-drain-timeout"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %s", err, want)
		}
	}
}
