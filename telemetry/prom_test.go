package telemetry

import (
	"strings"
	"testing"
)

// fullRegistry builds a registry exercising every instrument kind.
func fullRegistry() *Registry {
	r := NewRegistry()
	r.Counter("defuse_events_total", Label{"event", "fault.injected"}).Add(42)
	r.Counter("defuse_events_total", Label{"event", "detection"}).Add(41)
	r.Gauge("defuse_interp_ops", Label{"op", "loads"}).Set(123456)
	h := r.Histogram("defuse_phase_seconds", DefBuckets(),
		Label{"component", "instrument"}, Label{"phase", "usecount"})
	h.Observe(0.002)
	h.Observe(0.7)
	return r
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := fullRegistry()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	families, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exported text does not parse: %v\n%s", err, text)
	}
	ev := families["defuse_events_total"]
	if ev == nil || ev.Type != "counter" || len(ev.Samples) != 2 {
		t.Fatalf("counter family = %+v", ev)
	}
	var total float64
	for _, s := range ev.Samples {
		total += s.Value
	}
	if total != 83 {
		t.Errorf("counter values round-tripped to %v, want 83", total)
	}
	ops := families["defuse_interp_ops"]
	if ops == nil || ops.Type != "gauge" || ops.Samples[0].Value != 123456 {
		t.Fatalf("gauge family = %+v", ops)
	}
	ph := families["defuse_phase_seconds"]
	if ph == nil || ph.Type != "histogram" {
		t.Fatalf("histogram family = %+v", ph)
	}
	// buckets + sum + count
	if len(ph.Samples) != len(DefBuckets())+1+2 {
		t.Errorf("histogram samples = %d", len(ph.Samples))
	}
}

func TestLintAcceptsExport(t *testing.T) {
	var buf strings.Builder
	if err := fullRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Lint(strings.NewReader(buf.String())); err != nil {
		t.Errorf("lint rejected our own export: %v\n%s", err, buf.String())
	}
}

func TestLintRejectsBadText(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "defuse_x_total 1\n",
		"bad metric name":     "# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# TYPE defuse_x counter\ndefuse_x one\n",
		"unterminated labels": "# TYPE defuse_x counter\ndefuse_x{a=\"b 1\n",
		"histogram no +Inf": "# TYPE defuse_h histogram\n" +
			"defuse_h_bucket{le=\"1\"} 1\ndefuse_h_sum 1\ndefuse_h_count 1\n",
		"histogram not cumulative": "# TYPE defuse_h histogram\n" +
			"defuse_h_bucket{le=\"1\"} 5\ndefuse_h_bucket{le=\"+Inf\"} 3\n" +
			"defuse_h_sum 1\ndefuse_h_count 3\n",
		"histogram inf != count": "# TYPE defuse_h histogram\n" +
			"defuse_h_bucket{le=\"1\"} 1\ndefuse_h_bucket{le=\"+Inf\"} 3\n" +
			"defuse_h_sum 1\ndefuse_h_count 4\n",
	}
	for name, text := range cases {
		if err := Lint(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
}

func TestParseLabelEscapes(t *testing.T) {
	text := "# TYPE defuse_x counter\n" +
		"defuse_x{msg=\"a\\\"b\\\\c\\nd\"} 2\n"
	families, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got := families["defuse_x"].Samples[0].Labels["msg"]
	if got != "a\"b\\c\nd" {
		t.Errorf("label value = %q", got)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("defuse_esc_total", Label{"msg", `quote " slash \ nl` + "\n"}).Inc()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	got := families["defuse_esc_total"].Samples[0].Labels["msg"]
	if got != `quote " slash \ nl`+"\n" {
		t.Errorf("escaped label round-tripped to %q", got)
	}
}
