package checksum

import (
	"fmt"
	"math/bits"
)

// Acc selects one of the four checksum accumulators of a Pair.
type Acc int

// The four accumulators of the paper's two-pair scheme.
const (
	AccDef Acc = iota
	AccUse
	AccEDef
	AccEUse
)

var accNames = [...]string{"def", "use", "e_def", "e_use"}

// String returns the paper's name for the accumulator.
func (a Acc) String() string {
	if a >= 0 && int(a) < len(accNames) {
		return accNames[a]
	}
	return fmt.Sprintf("checksum.Acc(%d)", int(a))
}

// Per-accumulator shadow rotations. Distinct odd amounts keep the four
// encodings mutually decorrelated: a fault replayed at the same bit position
// of two shadow words decodes to different value deltas.
var shadowRot = [4]int{11, 23, 41, 53}

// encShadow produces the redundant second copy of an accumulator: the value
// left-rotated and inverted. Rotation decorrelates bit positions between the
// copies and inversion decorrelates bit values, so no single fault (nor a
// whole-word clear) can strike both encodings identically — the structural
// independence argument of DME applied to the detector's own state.
func encShadow(v uint64, a Acc) uint64 { return ^bits.RotateLeft64(v, shadowRot[a]) }

// decShadow recovers the accumulator value from its shadow encoding.
func decShadow(s uint64, a Acc) uint64 { return bits.RotateLeft64(^s, -shadowRot[a]) }

// Pair holds the four global checksums of the paper's scheme: the primary
// def/use pair and the auxiliary e_def/e_use pair introduced in Section 4.1
// to catch persistent corruptions that the primary pair alone would miss.
//
// The paper assumes these accumulators are register-resident and therefore
// outside the fault model (Section 5). In this reproduction they are ordinary
// heap words, so each accumulator is stored twice: raw, and as a
// rotated-and-inverted shadow copy updated independently through the same
// operation sequence. Scrub cross-checks the copies; a divergence means a
// fault struck the detector itself rather than the protected data.
//
// Use NewPair: the shadow copies of a zero Pair are uninitialized, so Scrub
// on a zero Pair reports a spurious divergence (Verify is unaffected).
type Pair struct {
	kind Kind

	// Def accumulates every defined value, scaled by its use count.
	Def uint64
	// Use accumulates every consumed value once per use.
	Use uint64
	// EDef accumulates each dynamically-counted defined value once at its
	// definition site.
	EDef uint64
	// EUse accumulates, for each dynamically-counted definition, the value
	// observed after its last use (at overwrite or in the epilogue).
	EUse uint64

	// shadow holds the complement-encoded second copy of each accumulator,
	// indexed by Acc. Each update decodes, applies the same fold, and
	// re-encodes, so a corrupted primary is never laundered into its shadow.
	shadow [4]uint64
}

// NewPair returns a Pair using operator k. k must be commutative.
func NewPair(k Kind) *Pair {
	p := &Pair{kind: k}
	if !k.Commutative() {
		panic(fmt.Sprintf("checksum: operator %v cannot be used for def/use checksums", k))
	}
	p.resealShadows()
	return p
}

// resealShadows re-derives every shadow from its primary. Only for
// initialization and trusted restores — never on the update path, where it
// would copy a corrupted primary into the shadow and mask the fault.
func (p *Pair) resealShadows() {
	p.shadow[AccDef] = encShadow(p.Def, AccDef)
	p.shadow[AccUse] = encShadow(p.Use, AccUse)
	p.shadow[AccEDef] = encShadow(p.EDef, AccEDef)
	p.shadow[AccEUse] = encShadow(p.EUse, AccEUse)
}

// Kind returns the operator of the pair.
func (p *Pair) Kind() Kind { return p.kind }

// foldShadow applies the same scaled fold to an accumulator's shadow copy,
// in the decoded domain.
func (p *Pair) foldShadow(a Acc, v uint64, n int64) {
	p.shadow[a] = encShadow(ScaleCombine(p.kind, decShadow(p.shadow[a], a), v, n), a)
}

// AddDef folds a defined value into the def-checksum n times, where n is the
// value's (known) use count.
func (p *Pair) AddDef(v uint64, n int64) {
	p.Def = ScaleCombine(p.kind, p.Def, v, n)
	p.foldShadow(AccDef, v, n)
}

// AddUse folds a consumed value into the use-checksum once.
func (p *Pair) AddUse(v uint64) {
	p.Use = Combine(p.kind, p.Use, v)
	p.foldShadow(AccUse, v, 1)
}

// AddEDef folds a dynamically-counted defined value into both the def- and
// the auxiliary def-checksum once (Algorithm 3, unknown-use-count def site).
func (p *Pair) AddEDef(v uint64) {
	p.Def = Combine(p.kind, p.Def, v)
	p.EDef = Combine(p.kind, p.EDef, v)
	p.foldShadow(AccDef, v, 1)
	p.foldShadow(AccEDef, v, 1)
}

// Adjust performs the epilogue/overwrite adjustment for a dynamically-counted
// definition whose observed current value is v and whose dynamic use count is
// n: v is folded into the def-checksum n-1 more times and into the auxiliary
// use-checksum once.
func (p *Pair) Adjust(v uint64, n int64) {
	p.Def = ScaleCombine(p.kind, p.Def, v, n-1)
	p.EUse = Combine(p.kind, p.EUse, v)
	p.foldShadow(AccDef, v, n-1)
	p.foldShadow(AccEUse, v, 1)
}

// ScaleFold folds v into the selected accumulator n times, updating both
// copies. It is the generic entry point for instrumented code that addresses
// accumulators by name (the mini language's add_to_chksm).
func (p *Pair) ScaleFold(a Acc, v uint64, n int64) {
	switch a {
	case AccDef:
		p.Def = ScaleCombine(p.kind, p.Def, v, n)
	case AccUse:
		p.Use = ScaleCombine(p.kind, p.Use, v, n)
	case AccEDef:
		p.EDef = ScaleCombine(p.kind, p.EDef, v, n)
	case AccEUse:
		p.EUse = ScaleCombine(p.kind, p.EUse, v, n)
	default:
		panic(fmt.Sprintf("checksum: ScaleFold of unknown accumulator %v", a))
	}
	p.foldShadow(a, v, n)
}

// Merge folds every accumulator of other into p under the pair's commutative
// operator. Because the def/use checksums are order-independent folds, a
// sequence of values partitioned across several Pairs and merged yields the
// same accumulators as folding the whole sequence into one Pair — this is the
// operation that makes per-goroutine checksum shards sound (see rt.Shard).
//
// The shadow copies are merged by decode-combine-re-encode, never by
// re-sealing from the merged primaries: each side's decoded shadow value is
// combined and the result re-encoded. A primary/shadow divergence present in
// either operand (a detector fault) therefore survives into the merged pair
// and is still caught by Scrub, while two internally consistent operands
// merge into an internally consistent result.
//
// Both pairs must use the same operator; merging across operators is a
// programmer error and panics. other is not modified.
func (p *Pair) Merge(other *Pair) {
	if p.kind != other.kind {
		panic(fmt.Sprintf("checksum: Merge of %v pair into %v pair", other.kind, p.kind))
	}
	p.Def = Combine(p.kind, p.Def, other.Def)
	p.Use = Combine(p.kind, p.Use, other.Use)
	p.EDef = Combine(p.kind, p.EDef, other.EDef)
	p.EUse = Combine(p.kind, p.EUse, other.EUse)
	for a := AccDef; a <= AccEUse; a++ {
		p.shadow[a] = encShadow(Combine(p.kind, decShadow(p.shadow[a], a), decShadow(other.shadow[a], a)), a)
	}
}

// Shadows exposes the raw (encoded) shadow copies, indexed by Acc. Tests use
// it to assert that two fold orders produce byte-identical detector state,
// shadows included.
func (p *Pair) Shadows() [4]uint64 { return p.shadow }

// SetAccumulators overwrites all four accumulators with trusted values and
// reseals the shadows. It is the restore path for verified checkpoints; the
// caller vouches for the integrity of the values (e.g. by a checkpoint
// digest), since resealing makes the shadows agree by construction.
func (p *Pair) SetAccumulators(def, use, edef, euse uint64) {
	p.Def, p.Use, p.EDef, p.EUse = def, use, edef, euse
	p.resealShadows()
}

// SetState overwrites the accumulators and their shadow copies with exact
// values, without resealing. It is the restore path for durable checkpoints
// that captured both copies: a primary/shadow divergence present at seal time
// (detector-fault evidence) is reinstated rather than erased, so a verdict
// formed before a crash survives the restart. The caller vouches for the
// bytes (e.g. by the checkpoint's integrity digest).
func (p *Pair) SetState(def, use, edef, euse uint64, shadow [4]uint64) {
	p.Def, p.Use, p.EDef, p.EUse = def, use, edef, euse
	p.shadow = shadow
}

// CorruptPrimary flips one bit of the primary copy of the selected
// accumulator, leaving its shadow untouched — exactly the footprint of a
// transient fault striking the detector's own state. Fault-injection
// campaigns use it to target the detector; it has no other purpose.
func (p *Pair) CorruptPrimary(a Acc, bit uint) {
	switch a {
	case AccDef:
		p.Def ^= 1 << (bit & 63)
	case AccUse:
		p.Use ^= 1 << (bit & 63)
	case AccEDef:
		p.EDef ^= 1 << (bit & 63)
	case AccEUse:
		p.EUse ^= 1 << (bit & 63)
	}
}

// ScrubError reports a divergence between an accumulator and its
// complement-encoded shadow copy: a fault struck the detector state itself.
type ScrubError struct {
	Acc     Acc
	Primary uint64
	// Shadow is the decoded shadow value that disagrees with Primary.
	Shadow uint64
}

func (e *ScrubError) Error() string {
	return fmt.Sprintf("checksum: %s accumulator diverged from its shadow copy: %#x != %#x (detector fault)",
		e.Acc, e.Primary, e.Shadow)
}

// Scrub cross-checks every accumulator against its shadow copy. A nil return
// means the detector state is internally consistent; a *ScrubError names the
// first diverged accumulator. Scrub does not compare def against use — that
// is Verify's job; Scrub only asks whether the comparison can be trusted.
func (p *Pair) Scrub() error {
	for a := AccDef; a <= AccEUse; a++ {
		primary := p.acc(a)
		if dec := decShadow(p.shadow[a], a); dec != primary {
			return &ScrubError{Acc: a, Primary: primary, Shadow: dec}
		}
	}
	return nil
}

// acc returns the primary copy of the selected accumulator.
func (p *Pair) acc(a Acc) uint64 {
	switch a {
	case AccDef:
		return p.Def
	case AccUse:
		return p.Use
	case AccEDef:
		return p.EDef
	default:
		return p.EUse
	}
}

// Reset zeroes all four checksums and reseals the shadows.
func (p *Pair) Reset() {
	p.Def, p.Use, p.EDef, p.EUse = 0, 0, 0, 0
	p.resealShadows()
}

// MismatchError reports a checksum verification failure.
type MismatchError struct {
	Which              string // "def/use" or "e_def/e_use"
	Expected, Observed uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checksum: %s mismatch: %#x != %#x (memory error detected)",
		e.Which, e.Expected, e.Observed)
}

// Verify compares the def/use and e_def/e_use checksums. A nil return means
// no memory error was detected; a *MismatchError reports which pair differs.
func (p *Pair) Verify() error {
	if p.Def != p.Use {
		return &MismatchError{Which: "def/use", Expected: p.Def, Observed: p.Use}
	}
	if p.EDef != p.EUse {
		return &MismatchError{Which: "e_def/e_use", Expected: p.EDef, Observed: p.EUse}
	}
	return nil
}
