package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (lock-free CAS loop).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency histogram with atomic bucket counts.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// DefBuckets returns the default latency bounds in seconds, covering
// microsecond-scale analysis phases through multi-second experiment runs.
func DefBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 30}
}

// EpochBuckets returns bounds for detection-latency histograms measured in
// epochs between injection and detection (0 = caught at the injection
// epoch's own boundary).
func EpochBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation within the covering bucket, the same estimate
// Prometheus's histogram_quantile produces. It returns 0 when the histogram
// is empty, and the largest finite bound when the quantile lands in the
// +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return QuantileFromBuckets(h.bounds, counts, q)
}

// QuantileFromBuckets estimates the q-quantile from per-bucket (not
// cumulative) observation counts. bounds are the ascending finite upper
// bounds; counts has one extra trailing entry for the implicit +Inf bucket.
// The estimate interpolates linearly within the covering bucket (the first
// bucket's lower edge is 0 when its bound is positive, following Prometheus
// convention); an empty histogram yields 0 and a quantile landing in the
// +Inf bucket yields the largest finite bound.
func QuantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: the best finite statement is the last bound.
			return bounds[len(bounds)-1]
		}
		upper := bounds[i]
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		} else if upper <= 0 {
			lower = upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// metric is one registered instrument.
type metric struct {
	name    string
	labels  []Label
	kind    string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. Registration takes a mutex; the returned
// instruments are lock-free, so hot paths should capture them once.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	kinds   map[string]string // family name -> kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}, kinds: map[string]string{}}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// key renders the unique instrument key (family name plus sorted labels).
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	sort.Strings(parts)
	return name + "{" + strings.Join(parts, ",") + "}"
}

// register finds or creates an instrument, enforcing name validity and
// per-family kind consistency. Misuse is a programmer error and panics.
func (r *Registry) register(name, kind string, labels []Label, bounds []float64) *metric {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as %s, requested %s", name, k, kind))
	}
	r.kinds[name] = kind
	id := key(name, labels)
	if m, ok := r.metrics[id]; ok {
		return m
	}
	m := &metric{name: name, kind: kind, labels: sortedLabels(labels)}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = newHistogram(bounds)
	}
	r.metrics[id] = m
	return m
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter finds or registers a counter. A nil registry returns a detached
// but functional counter, so wiring code needs no guards.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.register(name, kindCounter, labels, nil).counter
}

// Gauge finds or registers a gauge (nil-registry safe, as Counter).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.register(name, kindGauge, labels, nil).gauge
}

// Histogram finds or registers a fixed-bucket histogram with the given
// ascending upper bounds (nil-registry safe, as Counter). Bounds are fixed
// at first registration; later calls reuse the existing instrument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	return r.register(name, kindHistogram, labels, bounds).hist
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound rendered Prometheus-style
	// ("0.001", "+Inf").
	LE string `json:"le"`
	// Count is the cumulative observation count for values <= LE.
	Count uint64 `json:"count"`
}

// MetricSnapshot is a point-in-time reading of one instrument.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
	// Quantiles carries interpolated p50/p99/p999 estimates for histograms
	// with at least one observation.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot is a consistent-enough point-in-time export of a registry.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot reads every instrument. Ordering is deterministic (name, then
// label set). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	ids := make([]string, 0, len(r.metrics))
	for id := range r.metrics {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ms := make([]*metric, len(ids))
	for i, id := range ids {
		ms[i] = r.metrics[id]
	}
	r.mu.Unlock()

	var snap Snapshot
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Kind: m.kind}
		if len(m.labels) > 0 {
			s.Labels = map[string]string{}
			for _, l := range m.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindHistogram:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			cum := uint64(0)
			for i := range m.hist.buckets {
				cum += m.hist.buckets[i].Load()
				le := "+Inf"
				if i < len(m.hist.bounds) {
					le = formatFloat(m.hist.bounds[i])
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
			if s.Count > 0 {
				s.Quantiles = map[string]float64{
					"p50":  m.hist.Quantile(0.50),
					"p99":  m.hist.Quantile(0.99),
					"p999": m.hist.Quantile(0.999),
				}
			}
		}
		snap.Metrics = append(snap.Metrics, s)
	}
	return snap
}

// QuantileSummary is an aggregated histogram family's interpolated
// quantiles, as surfaced in overhead and campaign reports.
type QuantileSummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// FamilyQuantiles merges every label set of the named histogram family in
// the snapshot into one distribution and returns its interpolated
// p50/p99/p999. ok is false when the family is absent or has no
// observations.
func (s Snapshot) FamilyQuantiles(name string) (QuantileSummary, bool) {
	// Merge per-LE deltas across label sets; bounds are shared within a
	// family in practice, and stray bounds simply merge as extra buckets.
	deltas := map[string]uint64{}
	var total uint64
	seen := false
	for _, m := range s.Metrics {
		if m.Name != name || m.Kind != kindHistogram {
			continue
		}
		seen = true
		total += m.Count
		prev := uint64(0)
		for _, b := range m.Buckets {
			deltas[b.LE] += b.Count - prev
			prev = b.Count
		}
	}
	if !seen || total == 0 {
		return QuantileSummary{}, false
	}
	type bk struct {
		le    float64
		count uint64
	}
	var finite []bk
	var inf uint64
	for le, c := range deltas {
		v, err := parseValue(le)
		if err != nil {
			continue
		}
		if math.IsInf(v, 1) {
			inf += c
			continue
		}
		finite = append(finite, bk{le: v, count: c})
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i].le < finite[j].le })
	bounds := make([]float64, len(finite))
	counts := make([]uint64, len(finite)+1)
	for i, b := range finite {
		bounds[i] = b.le
		counts[i] = b.count
	}
	counts[len(finite)] = inf
	return QuantileSummary{
		Count: total,
		P50:   QuantileFromBuckets(bounds, counts, 0.50),
		P99:   QuantileFromBuckets(bounds, counts, 0.99),
		P999:  QuantileFromBuckets(bounds, counts, 0.999),
	}, true
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteMetricsFile writes the registry to path, choosing the format by
// extension: ".json" writes the JSON snapshot, anything else the Prometheus
// text exposition format.
func (r *Registry) WriteMetricsFile(path string) error {
	var buf strings.Builder
	var err error
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(&buf)
	} else {
		err = r.WritePrometheus(&buf)
	}
	if err != nil {
		return err
	}
	return writeFile(path, buf.String())
}
